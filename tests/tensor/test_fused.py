"""Gradient-parity and fast-path regression tests for the fused kernels.

Every fused kernel must produce the same forward value and the same gradients
as the composed-primitive implementation it replaces, in both float64 and
float32, to 1e-6.  The float64 kernels are additionally checked against
central-difference numerical gradients.  Finally, the inference fast path is
pinned down: operations under ``no_grad()`` must build exactly zero graph
nodes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Conv1d, GRUCell, LSTMCell, Linear, TextCNNEncoder
from repro.tensor import (
    Tensor,
    default_dtype,
    functional as F,
    fused,
    fused_kernels,
    get_default_dtype,
    graph_nodes_created,
    no_grad,
    set_default_dtype,
)

RNG = np.random.default_rng(1234)

DTYPES = (np.float64, np.float32)
ATOL = 1e-6


def _grads(build_loss, arrays, fused_on: bool):
    """Loss value + gradients of ``build_loss`` w.r.t. every input array."""
    with fused_kernels(fused_on):
        tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        loss = build_loss(*tensors)
        loss.backward()
        return loss.item(), [t.grad for t in tensors]


def assert_parity(build_loss, *arrays, dtype=np.float64):
    """Fused and composed paths must agree on the loss and every gradient."""
    arrays = [np.asarray(a, dtype=dtype) for a in arrays]
    with default_dtype(dtype):
        fused_loss, fused_grads = _grads(build_loss, arrays, fused_on=True)
        composed_loss, composed_grads = _grads(build_loss, arrays, fused_on=False)
    assert abs(fused_loss - composed_loss) <= ATOL
    for got, expected in zip(fused_grads, composed_grads):
        assert got is not None and expected is not None
        assert got.dtype == expected.dtype == dtype
        np.testing.assert_allclose(got, expected, atol=ATOL, rtol=1e-5)


def numerical_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        upper = fn()
        array[index] = original - eps
        lower = fn()
        array[index] = original
        grad[index] = (upper - lower) / (2 * eps)
        iterator.iternext()
    return grad


def assert_numerical(build_loss, *arrays):
    """Fused autograd gradients must match central differences (float64)."""
    with fused_kernels(True):
        tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        loss = build_loss(*tensors)
        loss.backward()
        for tensor in tensors:
            def closure(t=tensor):
                fixed = [Tensor(other.data) if other is not t else Tensor(t.data)
                         for other in tensors]
                return build_loss(*fixed).item()

            numeric = numerical_gradient(closure, tensor.data)
            np.testing.assert_allclose(tensor.grad, numeric, atol=1e-6, rtol=1e-4)


# --------------------------------------------------------------------------- #
# Parity: fused vs composed, both dtypes                                       #
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dtype", DTYPES)
class TestFusedComposedParity:
    def test_linear(self, dtype):
        x = RNG.standard_normal((5, 7))
        w = RNG.standard_normal((7, 4)) * 0.5
        b = RNG.standard_normal(4) * 0.1
        assert_parity(lambda xt, wt, bt: (fused.linear(xt, wt, bt) ** 2).sum()
                      if fused.is_fused_enabled()
                      else ((xt @ wt + bt) ** 2).sum(),
                      x, w, b, dtype=dtype)

    def test_linear_3d(self, dtype):
        x = RNG.standard_normal((3, 6, 7))
        w = RNG.standard_normal((7, 4)) * 0.5
        b = RNG.standard_normal(4) * 0.1
        assert_parity(lambda xt, wt, bt: (fused.linear(xt, wt, bt) ** 2).mean()
                      if fused.is_fused_enabled()
                      else ((xt @ wt + bt) ** 2).mean(),
                      x, w, b, dtype=dtype)

    def test_softmax(self, dtype):
        x = RNG.standard_normal((6, 5)) * 3.0
        assert_parity(lambda t: (F.softmax(t, axis=-1) ** 2).sum(), x, dtype=dtype)

    def test_softmax_other_axis(self, dtype):
        x = RNG.standard_normal((4, 6)) * 2.0
        assert_parity(lambda t: (F.softmax(t, axis=0) ** 3).sum(), x, dtype=dtype)

    def test_log_softmax(self, dtype):
        x = RNG.standard_normal((6, 5)) * 3.0
        assert_parity(lambda t: (F.log_softmax(t, axis=-1) ** 2).sum(), x, dtype=dtype)

    def test_cross_entropy(self, dtype):
        logits = RNG.standard_normal((8, 3)) * 2.0
        targets = RNG.integers(0, 3, 8)
        assert_parity(lambda t: F.cross_entropy(t, targets), logits, dtype=dtype)

    def test_cross_entropy_weighted(self, dtype):
        logits = RNG.standard_normal((8, 3)) * 2.0
        targets = RNG.integers(0, 3, 8)
        weights = RNG.random(8) + 0.25
        assert_parity(lambda t: F.cross_entropy(t, targets, weights=weights),
                      logits, dtype=dtype)

    @pytest.mark.parametrize("temperature", (1.0, 4.0))
    def test_distillation_kl(self, dtype, temperature):
        student = RNG.standard_normal((6, 4))
        teacher = np.asarray(RNG.standard_normal((6, 4)), dtype=dtype)
        # The teacher is a constant in both implementations (the composed
        # version detaches it), so parity is checked on the student gradient.
        assert_parity(
            lambda s: F.distillation_kl(s, Tensor(teacher), temperature=temperature),
            student, dtype=dtype)

    @pytest.mark.parametrize("normalize", (True, False))
    def test_add_loss(self, dtype, normalize):
        student = RNG.standard_normal((9, 5))
        teacher = np.asarray(RNG.standard_normal((9, 5)), dtype=dtype)

        def build(s):
            if fused.is_fused_enabled():
                return fused.add_loss(s, Tensor(teacher), temperature=2.0,
                                      normalize=normalize)
            t = Tensor(teacher)
            student_matrix = -F.pairwise_squared_distances(
                F.normalize(s) if normalize else s)
            teacher_matrix = -F.pairwise_squared_distances(
                F.normalize(t) if normalize else t)
            return F.distillation_kl(student_matrix, teacher_matrix, temperature=2.0)

        assert_parity(build, student, dtype=dtype)

    def test_add_loss_no_teacher_grad(self, dtype):
        student = Tensor(RNG.standard_normal((6, 4)), requires_grad=True)
        teacher = Tensor(RNG.standard_normal((6, 4)), requires_grad=True)
        with default_dtype(dtype), fused_kernels(True):
            fused.add_loss(student, teacher, temperature=1.5).backward()
        assert student.grad is not None
        assert teacher.grad is None

    def test_embedding(self, dtype):
        # 2-D indices with duplicates: the scatter backward must accumulate.
        weight = RNG.standard_normal((7, 4))
        indices = RNG.integers(0, 7, (3, 5))
        indices[0, 0] = indices[1, 1] = 2
        assert_parity(lambda wt: (F.embedding(wt, indices) ** 2).sum(),
                      weight, dtype=dtype)

    @pytest.mark.parametrize("temperature", (1.0, 4.0))
    def test_distillation_kl_no_teacher_grad(self, dtype, temperature):
        student = Tensor(RNG.standard_normal((6, 4)), requires_grad=True)
        teacher = Tensor(RNG.standard_normal((6, 4)), requires_grad=True)
        with default_dtype(dtype), fused_kernels(True):
            F.distillation_kl(student, teacher, temperature=temperature).backward()
        assert student.grad is not None
        assert teacher.grad is None

    def test_gru_step(self, dtype):
        with default_dtype(dtype):
            cell = GRUCell(5, 4, rng=np.random.default_rng(0))
        x = RNG.standard_normal((3, 5))
        h = RNG.standard_normal((3, 4))

        def loss(xt, ht):
            return (cell(xt, ht) ** 2).sum()

        arrays = [np.asarray(a, dtype=dtype) for a in (x, h)]
        with default_dtype(dtype):
            fused_loss, fused_grads = _grads(loss, arrays, fused_on=True)
            fused_params = [p.grad.copy() for p in cell.parameters()]
            cell.zero_grad()
            composed_loss, composed_grads = _grads(loss, arrays, fused_on=False)
            composed_params = [p.grad.copy() for p in cell.parameters()]
            cell.zero_grad()
        assert abs(fused_loss - composed_loss) <= ATOL
        for got, expected in zip(fused_grads + fused_params,
                                 composed_grads + composed_params):
            np.testing.assert_allclose(got, expected, atol=ATOL, rtol=1e-5)

    @pytest.mark.parametrize("readout", ("hidden", "cell", "both"))
    def test_lstm_step(self, dtype, readout):
        with default_dtype(dtype):
            cell_module = LSTMCell(5, 4, rng=np.random.default_rng(0))
        x = RNG.standard_normal((3, 5))
        h = RNG.standard_normal((3, 4))
        c = RNG.standard_normal((3, 4))

        def loss(xt, ht, ct):
            new_h, new_c = cell_module(xt, ht, ct)
            if readout == "hidden":
                return (new_h ** 2).sum()
            if readout == "cell":
                return (new_c ** 2).sum()
            return (new_h ** 2).sum() + new_c.sum()

        arrays = [np.asarray(a, dtype=dtype) for a in (x, h, c)]
        with default_dtype(dtype):
            fused_loss, fused_grads = _grads(loss, arrays, fused_on=True)
            fused_params = [p.grad.copy() for p in cell_module.parameters()]
            cell_module.zero_grad()
            composed_loss, composed_grads = _grads(loss, arrays, fused_on=False)
            composed_params = [p.grad.copy() for p in cell_module.parameters()]
            cell_module.zero_grad()
        assert abs(fused_loss - composed_loss) <= ATOL
        for got, expected in zip(fused_grads + fused_params,
                                 composed_grads + composed_params):
            np.testing.assert_allclose(got, expected, atol=ATOL, rtol=1e-5)

    def test_lstm_sequence_chain(self, dtype):
        """Chained steps: the cell state threads grads through many fused pairs."""
        with default_dtype(dtype):
            cell_module = LSTMCell(3, 4, rng=np.random.default_rng(1))
            inputs = np.asarray(RNG.standard_normal((4, 2, 3)), dtype=dtype)

            def run(fused_on):
                with fused_kernels(fused_on):
                    cell_module.zero_grad()
                    h = Tensor(np.zeros((2, 4), dtype=dtype))
                    c = Tensor(np.zeros((2, 4), dtype=dtype))
                    outs = []
                    for step in range(inputs.shape[0]):
                        h, c = cell_module(Tensor(inputs[step]), h, c)
                        outs.append(h)
                    (Tensor.cat(outs, axis=1) ** 2).sum().backward()
                    return [p.grad.copy() for p in cell_module.parameters()]

            for got, expected in zip(run(True), run(False)):
                np.testing.assert_allclose(got, expected, atol=ATOL, rtol=1e-5)

    def test_conv1d(self, dtype):
        with default_dtype(dtype):
            conv = Conv1d(4, 3, 3, rng=np.random.default_rng(0))
        x = RNG.standard_normal((2, 7, 4))

        def loss(xt):
            return (conv(xt) ** 2).mean()

        arrays = [np.asarray(x, dtype=dtype)]
        with default_dtype(dtype):
            fused_loss, fused_grads = _grads(loss, arrays, fused_on=True)
            fused_params = [p.grad.copy() for p in conv.parameters()]
            conv.zero_grad()
            composed_loss, composed_grads = _grads(loss, arrays, fused_on=False)
            composed_params = [p.grad.copy() for p in conv.parameters()]
            conv.zero_grad()
        assert abs(fused_loss - composed_loss) <= ATOL
        for got, expected in zip(fused_grads + fused_params,
                                 composed_grads + composed_params):
            np.testing.assert_allclose(got, expected, atol=ATOL, rtol=1e-5)

    def test_max_pool(self, dtype):
        x = RNG.standard_normal((3, 6, 4))

        def loss(xt):
            pooled = fused.max_pool1d(xt) if fused.is_fused_enabled() \
                else xt.max(axis=1)
            return (pooled ** 2).sum()

        assert_parity(loss, x, dtype=dtype)

    def test_textcnn_encoder(self, dtype):
        """The conv + relu/pool reordering must not change values or grads."""
        with default_dtype(dtype):
            encoder = TextCNNEncoder(6, kernel_sizes=(1, 2, 3), channels=5,
                                     rng=np.random.default_rng(0))
        x = np.asarray(RNG.standard_normal((3, 8, 6)), dtype=dtype)

        def run(fused_on):
            with default_dtype(dtype), fused_kernels(fused_on):
                encoder.zero_grad()
                xt = Tensor(x, requires_grad=True)
                out = encoder(xt)
                (out ** 2).sum().backward()
                return out.numpy().copy(), [xt.grad.copy()] + \
                    [p.grad.copy() for p in encoder.parameters()]

        fused_out, fused_grads = run(True)
        composed_out, composed_grads = run(False)
        np.testing.assert_allclose(fused_out, composed_out, atol=ATOL, rtol=1e-5)
        for got, expected in zip(fused_grads, composed_grads):
            np.testing.assert_allclose(got, expected, atol=ATOL, rtol=1e-5)


# --------------------------------------------------------------------------- #
# Numerical gradients of the fused kernels (float64)                           #
# --------------------------------------------------------------------------- #
class TestFusedNumericalGradients:
    def test_linear(self):
        x = RNG.standard_normal((4, 5))
        w = RNG.standard_normal((5, 3)) * 0.5
        b = RNG.standard_normal(3) * 0.1
        assert_numerical(lambda xt, wt, bt: (fused.linear(xt, wt, bt) ** 2).sum(),
                         x, w, b)

    def test_softmax(self):
        x = RNG.standard_normal((4, 5))
        assert_numerical(lambda t: (fused.softmax(t, axis=-1) ** 2).sum(), x)

    def test_log_softmax(self):
        x = RNG.standard_normal((4, 5))
        assert_numerical(lambda t: (fused.log_softmax(t, axis=-1) ** 2).sum(), x)

    def test_cross_entropy(self):
        logits = RNG.standard_normal((6, 3))
        targets = RNG.integers(0, 3, 6)
        assert_numerical(lambda t: fused.cross_entropy(t, targets), logits)

    def test_distillation_kl(self):
        student = RNG.standard_normal((5, 3))
        teacher = RNG.standard_normal((5, 3))
        assert_numerical(
            lambda s: fused.distillation_kl(s, Tensor(teacher), temperature=2.5),
            student)

    def test_gru_step(self):
        cell = GRUCell(4, 3, rng=np.random.default_rng(3))
        weights = [cell.weight_ih.data.copy(), cell.weight_hh.data.copy(),
                   cell.bias.data.copy()]
        x = RNG.standard_normal((2, 4))
        h = RNG.standard_normal((2, 3))
        assert_numerical(
            lambda xt, ht, wih, whh, b: (fused.gru_step(xt, ht, wih, whh, b) ** 2).sum(),
            x, h, *weights)

    def test_lstm_step(self):
        cell = LSTMCell(4, 3, rng=np.random.default_rng(3))
        weights = [cell.weight_ih.data.copy(), cell.weight_hh.data.copy(),
                   cell.bias.data.copy()]
        x = RNG.standard_normal((2, 4))
        h = RNG.standard_normal((2, 3))
        c = RNG.standard_normal((2, 3))

        def loss(xt, ht, ct, wih, whh, b):
            new_h, new_c = fused.lstm_step(xt, ht, ct, wih, whh, b)
            return (new_h ** 2).sum() + new_c.sum()

        assert_numerical(loss, x, h, c, *weights)

    def test_conv1d(self):
        x = RNG.standard_normal((2, 6, 3))
        w = RNG.standard_normal((2 * 3, 4)) * 0.5
        b = RNG.standard_normal(4) * 0.1
        assert_numerical(
            lambda xt, wt, bt: (fused.conv1d(xt, wt, bt, 2) ** 2).sum(), x, w, b)

    @pytest.mark.parametrize("normalize", (True, False))
    def test_add_loss(self, normalize):
        student = RNG.standard_normal((6, 4))
        teacher = RNG.standard_normal((6, 4))
        assert_numerical(
            lambda s: fused.add_loss(s, Tensor(teacher), temperature=2.5,
                                     normalize=normalize),
            student)

    def test_embedding(self):
        weight = RNG.standard_normal((6, 3))
        indices = RNG.integers(0, 6, (2, 4))
        indices[0, 0] = indices[1, 2] = 4
        assert_numerical(lambda wt: (fused.embedding(wt, indices) ** 2).sum(),
                         weight)


# --------------------------------------------------------------------------- #
# Inference fast path: no graph construction under no_grad                     #
# --------------------------------------------------------------------------- #
class TestNoGradFastPath:
    def test_primitive_ops_build_zero_nodes(self):
        a = Tensor(RNG.standard_normal((4, 5)), requires_grad=True)
        b = Tensor(RNG.standard_normal((4, 5)), requires_grad=True)
        before = graph_nodes_created()
        with no_grad():
            out = (a + b) * a - b / (a.abs() + 2.0)
            out = out.relu().tanh().sigmoid().exp().sum()
            _ = a.reshape(20)[3:7].max()
            _ = Tensor.cat([a, b], axis=1).mean(axis=0)
        assert graph_nodes_created() == before
        assert out._backward is None and out._prev == ()

    def test_fused_kernels_build_zero_nodes(self):
        linear = Linear(6, 4, rng=np.random.default_rng(0))
        gru = GRUCell(6, 4, rng=np.random.default_rng(1))
        lstm = LSTMCell(6, 4, rng=np.random.default_rng(2))
        conv = Conv1d(6, 4, 2, rng=np.random.default_rng(3))
        x2 = Tensor(RNG.standard_normal((3, 6)))
        x3 = Tensor(RNG.standard_normal((3, 5, 6)))
        h = Tensor(RNG.standard_normal((3, 4)))
        c = Tensor(RNG.standard_normal((3, 4)))
        before = graph_nodes_created()
        with no_grad():
            _ = linear(x2)
            _ = gru(x2, h)
            _ = lstm(x2, h, c)
            _ = fused.max_pool1d(conv(x3))
            _ = F.softmax(x2)
            _ = F.cross_entropy(x2[:, :2], np.array([0, 1, 0]))
            _ = F.distillation_kl(x2, x2, temperature=2.0)
            _ = fused.add_loss(x2, x2, temperature=2.0)
            _ = fused.embedding(linear.weight, np.array([[0, 1], [2, 0]]))
        assert graph_nodes_created() == before

    def test_add_loss_and_embedding_are_single_nodes(self):
        """The composed ADD chain is ~25 nodes; the fused kernels are O(1)."""
        student = Tensor(RNG.standard_normal((8, 5)), requires_grad=True)
        teacher = Tensor(RNG.standard_normal((8, 5)))
        before = graph_nodes_created()
        fused.add_loss(student, teacher, temperature=2.0)
        assert graph_nodes_created() - before == 1
        weight = Tensor(RNG.standard_normal((9, 4)), requires_grad=True)
        before = graph_nodes_created()
        fused.embedding(weight, RNG.integers(0, 9, (3, 6)))
        assert graph_nodes_created() - before == 1

    def test_training_still_records_nodes(self):
        linear = Linear(6, 4, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((3, 6)))
        before = graph_nodes_created()
        out = linear(x).sum()
        assert graph_nodes_created() == before + 2  # fused linear + sum
        out.backward()
        assert linear.weight.grad is not None


# --------------------------------------------------------------------------- #
# Dtype policy                                                                 #
# --------------------------------------------------------------------------- #
class TestDtypePolicy:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64
        assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_context_manager_scopes_policy(self):
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0]).dtype == np.float32
            assert Tensor.zeros(3).dtype == np.float32
        assert get_default_dtype() == np.float64

    def test_set_default_dtype_returns_previous(self):
        previous = set_default_dtype("float32")
        try:
            assert previous == np.float64
            assert Tensor(np.arange(3)).dtype == np.float32
        finally:
            set_default_dtype(previous)

    def test_rejects_non_float_dtypes(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)

    def test_float32_training_end_to_end(self):
        with default_dtype("float32"):
            linear = Linear(6, 2, rng=np.random.default_rng(0))
            x = Tensor(RNG.standard_normal((4, 6)))
            assert x.dtype == np.float32
            loss = F.cross_entropy(linear(x), np.array([0, 1, 0, 1]))
            assert loss.dtype == np.float32
            loss.backward()
            assert linear.weight.grad.dtype == np.float32

    def test_module_astype_round_trip(self):
        gru = GRUCell(4, 3, rng=np.random.default_rng(0))
        gru.astype(np.float32)
        assert all(p.dtype == np.float32 for p in gru.parameters())
        gru.astype(np.float64)
        assert all(p.dtype == np.float64 for p in gru.parameters())

    def test_stable_sigmoid_no_warning_on_extremes(self):
        x = Tensor(np.array([-1000.0, -50.0, 0.0, 50.0, 1000.0]))
        with np.errstate(over="raise", invalid="raise"):
            out = x.sigmoid()
        np.testing.assert_allclose(out.numpy(), [0.0, 0.0, 0.5, 1.0, 1.0],
                                   atol=1e-20)
