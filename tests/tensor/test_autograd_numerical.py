"""Numerical-gradient checks for every backward rule used by the models."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F

RNG = np.random.default_rng(42)


def numerical_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        upper = fn()
        array[index] = original - eps
        lower = fn()
        array[index] = original
        grad[index] = (upper - lower) / (2 * eps)
        iterator.iternext()
    return grad


def check(build_loss, *arrays, atol=1e-6):
    """Compare autograd gradients with numerical gradients for every input array."""
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    loss = build_loss(*tensors)
    loss.backward()
    for tensor in tensors:
        def closure(t=tensor):
            fixed = [Tensor(other.data) if other is not t else Tensor(t.data)
                     for other in tensors]
            return build_loss(*fixed).item()

        numeric = numerical_gradient(closure, tensor.data)
        assert tensor.grad is not None
        np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)


class TestBasicOps:
    def test_add_mul_broadcast(self):
        a = RNG.standard_normal((3, 4))
        b = RNG.standard_normal((4,))
        check(lambda x, y: ((x + y) * (x * 0.5 + 2.0)).sum(), a, b)

    def test_sub_div(self):
        a = RNG.standard_normal((2, 3)) + 3.0
        b = RNG.standard_normal((2, 3)) + 3.0
        check(lambda x, y: ((x - y) / y).sum(), a, b)

    def test_pow_sqrt(self):
        a = np.abs(RNG.standard_normal((5,))) + 0.5
        check(lambda x: (x ** 3 + x.sqrt()).sum(), a)

    def test_matmul(self):
        a = RNG.standard_normal((4, 3))
        b = RNG.standard_normal((3, 5))
        check(lambda x, y: (x @ y).sum(), a, b)

    def test_matmul_batched(self):
        a = RNG.standard_normal((2, 3, 4))
        b = RNG.standard_normal((2, 4, 2))
        check(lambda x, y: ((x @ y) ** 2).sum(), a, b)

    def test_matvec(self):
        a = RNG.standard_normal((4, 3))
        v = RNG.standard_normal((3,))
        check(lambda x, y: (x @ y).sum(), a, v)


class TestReductions:
    def test_sum_axis_keepdims(self):
        a = RNG.standard_normal((3, 4, 2))
        check(lambda x: (x.sum(axis=1, keepdims=True) * 2.0).sum(), a)

    def test_mean(self):
        a = RNG.standard_normal((4, 5))
        check(lambda x: (x.mean(axis=0) ** 2).sum(), a)

    def test_max_global_and_axis(self):
        a = RNG.standard_normal((3, 6))
        check(lambda x: x.max(), a)
        check(lambda x: x.max(axis=1).sum(), a)

    def test_min(self):
        a = RNG.standard_normal((3, 6))
        check(lambda x: x.min(axis=0).sum(), a)


class TestElementwise:
    def test_exp_log(self):
        a = np.abs(RNG.standard_normal((4, 4))) + 0.2
        check(lambda x: (x.exp() + x.log()).sum(), a)

    def test_tanh_sigmoid_relu(self):
        a = RNG.standard_normal((3, 5))
        check(lambda x: (x.tanh() * x.sigmoid() + x.relu()).sum(), a, atol=1e-5)

    def test_abs_clip(self):
        a = RNG.standard_normal((4, 4)) * 2.0
        check(lambda x: (x.abs() + x.clip(-0.5, 0.5)).sum(), a, atol=1e-5)


class TestShapeOps:
    def test_reshape_transpose(self):
        a = RNG.standard_normal((2, 3, 4))
        check(lambda x: (x.reshape(6, 4).transpose(1, 0) ** 2).sum(), a)

    def test_getitem_slice(self):
        a = RNG.standard_normal((4, 6))
        check(lambda x: (x[:, 1:4] ** 2).sum(), a)

    def test_getitem_integer_array(self):
        a = RNG.standard_normal((5, 3))
        idx = np.array([0, 2, 2, 4])
        check(lambda x: (x[idx] ** 2).sum(), a)

    def test_cat_stack(self):
        a = RNG.standard_normal((2, 3))
        b = RNG.standard_normal((2, 3))
        check(lambda x, y: (Tensor.cat([x, y], axis=1) ** 2).sum(), a, b)
        check(lambda x, y: (Tensor.stack([x, y], axis=0) ** 3).sum(), a, b)

    def test_where(self):
        a = RNG.standard_normal((3, 3))
        b = RNG.standard_normal((3, 3))
        cond = RNG.random((3, 3)) > 0.5
        check(lambda x, y: (Tensor.where(cond, x, y) ** 2).sum(), a, b)


class TestFunctional:
    def test_softmax_log_softmax(self):
        a = RNG.standard_normal((4, 5))
        check(lambda x: (F.softmax(x, axis=-1) * np.arange(5.0)).sum(), a)
        check(lambda x: (F.log_softmax(x, axis=-1) ** 2).sum(), a)

    def test_cross_entropy(self):
        logits = RNG.standard_normal((6, 3))
        targets = np.array([0, 1, 2, 1, 0, 2])
        check(lambda x: F.cross_entropy(x, targets), logits)

    def test_weighted_cross_entropy(self):
        logits = RNG.standard_normal((4, 2))
        targets = np.array([0, 1, 1, 0])
        weights = np.array([0.5, 2.0, 1.0, 1.5])
        check(lambda x: F.cross_entropy(x, targets, weights=weights), logits)

    def test_binary_cross_entropy_with_logits(self):
        logits = RNG.standard_normal((8,))
        targets = (RNG.random(8) > 0.5).astype(float)
        check(lambda x: F.binary_cross_entropy_with_logits(x, targets), logits)

    def test_mse(self):
        a = RNG.standard_normal((3, 3))
        b = RNG.standard_normal((3, 3))
        check(lambda x: F.mse_loss(x, b), a)

    def test_distillation_kl(self):
        student = RNG.standard_normal((5, 4))
        teacher = RNG.standard_normal((5, 4))
        check(lambda x: F.distillation_kl(x, Tensor(teacher), temperature=3.0), student)

    def test_pairwise_squared_distances(self):
        a = RNG.standard_normal((6, 4))
        check(lambda x: (F.pairwise_squared_distances(x) ** 2).sum() * 1e-2, a, atol=1e-4)

    def test_information_entropy_loss(self):
        logits = RNG.standard_normal((5, 4))
        check(lambda x: F.information_entropy_loss(F.softmax(x, axis=-1)), logits)

    def test_normalize_and_masked_mean(self):
        a = RNG.standard_normal((3, 5, 4))
        mask = (RNG.random((3, 5)) > 0.3).astype(float)
        mask[:, 0] = 1.0
        check(lambda x: (F.normalize(F.masked_mean(x, mask), axis=-1) ** 2).sum(), a, atol=1e-5)

    def test_gelu(self):
        a = RNG.standard_normal((4, 4))
        check(lambda x: F.gelu(x).sum(), a, atol=1e-5)

    def test_embedding(self):
        table = RNG.standard_normal((10, 4))
        idx = np.array([[1, 2, 3], [3, 3, 9]])
        check(lambda w: (F.embedding(w, idx) ** 2).sum(), table)


class TestGradientAccumulation:
    def test_reused_tensor_accumulates(self):
        a = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        loss = (a * a).sum() + (3.0 * a).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data + 3.0)

    def test_two_backward_calls_accumulate(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (a * 2).sum().backward()
        first = a.grad.copy()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)

    def test_zero_grad(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        (a * 5).sum().backward()
        a.zero_grad()
        assert a.grad is None


class TestDropoutBehaviour:
    def test_dropout_eval_is_identity(self):
        x = Tensor(RNG.standard_normal((4, 4)), requires_grad=True)
        out = F.dropout(x, 0.5, training=False)
        np.testing.assert_allclose(out.numpy(), x.numpy())

    def test_dropout_train_scales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        kept = out.numpy()[out.numpy() > 0]
        assert np.allclose(kept, 2.0)
        assert 0.35 < (out.numpy() > 0).mean() < 0.65

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)
