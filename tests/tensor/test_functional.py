"""Semantics of the functional API (values, invariants, error handling)."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F


class TestSoftmaxFamily:
    def test_softmax_sums_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((6, 7)) * 10)
        probs = F.softmax(x, axis=-1).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)
        assert np.all(probs >= 0)

    def test_softmax_invariant_to_shift(self):
        x = np.random.default_rng(1).standard_normal((3, 4))
        a = F.softmax(Tensor(x)).numpy()
        b = F.softmax(Tensor(x + 100.0)).numpy()
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(2).standard_normal((4, 5)))
        np.testing.assert_allclose(F.log_softmax(x).numpy(),
                                   np.log(F.softmax(x).numpy()), atol=1e-10)

    def test_softmax_handles_extreme_values(self):
        x = Tensor(np.array([[1000.0, -1000.0], [0.0, 0.0]]))
        probs = F.softmax(x).numpy()
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs[0], [1.0, 0.0], atol=1e-12)


class TestLosses:
    def test_cross_entropy_perfect_prediction_is_small(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        assert F.cross_entropy(logits, np.array([0, 1])).item() < 1e-4

    def test_cross_entropy_uniform_is_log_k(self):
        logits = Tensor(np.zeros((5, 4)))
        assert F.cross_entropy(logits, np.array([0, 1, 2, 3, 0])).item() == pytest.approx(np.log(4))

    def test_nll_matches_cross_entropy(self):
        rng = np.random.default_rng(3)
        logits = Tensor(rng.standard_normal((6, 3)))
        targets = np.array([0, 1, 2, 0, 1, 2])
        ce = F.cross_entropy(logits, targets).item()
        nll = F.nll_loss(F.log_softmax(logits), targets).item()
        assert ce == pytest.approx(nll)

    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([0, 3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([[0, 1]]), 3)

    def test_bce_with_logits_matches_manual(self):
        logits = np.array([0.0, 2.0, -2.0])
        targets = np.array([1.0, 1.0, 0.0])
        manual = np.mean(np.log1p(np.exp(-np.abs(logits))) + np.maximum(logits, 0)
                         - logits * targets)
        value = F.binary_cross_entropy_with_logits(Tensor(logits), targets).item()
        assert value == pytest.approx(manual)

    def test_mse(self):
        a = Tensor(np.array([1.0, 2.0]))
        assert F.mse_loss(a, np.array([0.0, 0.0])).item() == pytest.approx(2.5)


class TestDistillation:
    def test_kl_zero_for_identical_distributions(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((4, 3)))
        assert F.distillation_kl(logits, logits.copy(), temperature=2.0).item() == pytest.approx(0.0, abs=1e-10)

    def test_kl_positive_for_different_distributions(self):
        a = Tensor(np.array([[5.0, 0.0, 0.0]]))
        b = Tensor(np.array([[0.0, 5.0, 0.0]]))
        assert F.distillation_kl(a, b).item() > 0.5

    def test_temperature_scaling_changes_value(self):
        rng = np.random.default_rng(1)
        a, b = Tensor(rng.standard_normal((5, 4))), Tensor(rng.standard_normal((5, 4)))
        low = F.distillation_kl(a, b, temperature=1.0).item()
        high = F.distillation_kl(a, b, temperature=8.0).item()
        assert low != pytest.approx(high)

    def test_invalid_temperature(self):
        a = Tensor(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            F.distillation_kl(a, a, temperature=0.0)

    def test_teacher_gradient_is_blocked(self):
        student = Tensor(np.random.default_rng(0).standard_normal((3, 2)), requires_grad=True)
        teacher = Tensor(np.random.default_rng(1).standard_normal((3, 2)), requires_grad=True)
        F.distillation_kl(student, teacher).backward()
        assert student.grad is not None
        assert teacher.grad is None


class TestStructuredHelpers:
    def test_pairwise_distances_properties(self):
        x = np.random.default_rng(0).standard_normal((7, 5))
        m = F.pairwise_squared_distances(Tensor(x)).numpy()
        assert m.shape == (7, 7)
        np.testing.assert_allclose(np.diag(m), 0.0, atol=1e-9)
        np.testing.assert_allclose(m, m.T, atol=1e-9)
        expected = ((x[:, None, :] - x[None, :, :]) ** 2).sum(-1)
        np.testing.assert_allclose(m, expected, atol=1e-8)

    def test_pairwise_distances_requires_matrix(self):
        with pytest.raises(ValueError):
            F.pairwise_squared_distances(Tensor(np.zeros((2, 3, 4))))

    def test_entropy_uniform_is_maximal(self):
        uniform = Tensor(np.full((1, 4), 0.25))
        peaked = Tensor(np.array([[0.97, 0.01, 0.01, 0.01]]))
        assert F.entropy(uniform).item() > F.entropy(peaked).item()

    def test_information_entropy_loss_sign(self):
        # Minimising the loss should push towards uniform predictions, so the
        # uniform distribution must have the smaller (more negative) loss.
        uniform = Tensor(np.full((2, 4), 0.25))
        peaked = Tensor(np.array([[0.97, 0.01, 0.01, 0.01], [0.01, 0.97, 0.01, 0.01]]))
        assert F.information_entropy_loss(uniform).item() < F.information_entropy_loss(peaked).item()

    def test_normalize_unit_norm(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 6)) * 5)
        norms = np.linalg.norm(F.normalize(x).numpy(), axis=-1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_masked_mean_ignores_padding(self):
        x = np.zeros((1, 3, 2))
        x[0, 0] = [2.0, 4.0]
        x[0, 1] = [4.0, 8.0]
        x[0, 2] = [100.0, 100.0]  # padded position
        mask = np.array([[1.0, 1.0, 0.0]])
        result = F.masked_mean(Tensor(x), mask, axis=1).numpy()
        np.testing.assert_allclose(result, [[3.0, 6.0]])

    def test_masked_mean_empty_row_is_safe(self):
        x = np.ones((1, 3, 2))
        mask = np.zeros((1, 3))
        result = F.masked_mean(Tensor(x), mask, axis=1).numpy()
        assert np.isfinite(result).all()

    def test_embedding_lookup(self):
        table = Tensor(np.arange(12.0).reshape(6, 2))
        out = F.embedding(table, np.array([[0, 5], [2, 2]]))
        np.testing.assert_allclose(out.numpy(), [[[0, 1], [10, 11]], [[4, 5], [4, 5]]])
