"""Forward-pass correctness of the Tensor operations against NumPy."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad


class TestConstruction:
    def test_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_integer_input_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert np.issubdtype(t.dtype, np.floating)

    def test_zeros_ones_full(self):
        assert np.all(Tensor.zeros(2, 3).numpy() == 0.0)
        assert np.all(Tensor.ones(4).numpy() == 1.0)
        assert np.all(Tensor.full((2, 2), 7.5).numpy() == 7.5)

    def test_randn_uses_rng(self):
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        a = Tensor.randn(3, 3, rng=rng1)
        b = Tensor.randn(3, 3, rng=rng2)
        np.testing.assert_allclose(a.numpy(), b.numpy())

    def test_item_and_len(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_detach_shares_data_but_not_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.numpy() is t.numpy()


class TestArithmetic:
    def setup_method(self):
        self.a = np.array([[1.0, -2.0], [3.0, 0.5]])
        self.b = np.array([[2.0, 2.0], [0.5, -1.0]])

    def test_add_sub_mul_div(self):
        ta, tb = Tensor(self.a), Tensor(self.b)
        np.testing.assert_allclose((ta + tb).numpy(), self.a + self.b)
        np.testing.assert_allclose((ta - tb).numpy(), self.a - self.b)
        np.testing.assert_allclose((ta * tb).numpy(), self.a * self.b)
        np.testing.assert_allclose((ta / tb).numpy(), self.a / self.b)

    def test_scalar_operations(self):
        t = Tensor(self.a)
        np.testing.assert_allclose((t + 1.0).numpy(), self.a + 1.0)
        np.testing.assert_allclose((2.0 * t).numpy(), 2.0 * self.a)
        np.testing.assert_allclose((1.0 - t).numpy(), 1.0 - self.a)
        np.testing.assert_allclose((1.0 / Tensor(self.b)).numpy(), 1.0 / self.b)

    def test_neg_pow(self):
        t = Tensor(self.b)
        np.testing.assert_allclose((-t).numpy(), -self.b)
        np.testing.assert_allclose((t ** 2).numpy(), self.b ** 2)

    def test_pow_requires_scalar(self):
        with pytest.raises(TypeError):
            Tensor(self.a) ** Tensor(self.b)  # type: ignore[operator]

    def test_matmul_2d(self):
        result = Tensor(self.a) @ Tensor(self.b)
        np.testing.assert_allclose(result.numpy(), self.a @ self.b)

    def test_matmul_batched(self):
        a = np.random.default_rng(0).standard_normal((4, 3, 5))
        b = np.random.default_rng(1).standard_normal((4, 5, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).numpy(), a @ b)

    def test_broadcasting_add(self):
        a = np.ones((3, 4))
        b = np.arange(4.0)
        np.testing.assert_allclose((Tensor(a) + Tensor(b)).numpy(), a + b)


class TestReductionsAndShape:
    def setup_method(self):
        self.x = np.arange(24.0).reshape(2, 3, 4)

    def test_sum_axes(self):
        t = Tensor(self.x)
        np.testing.assert_allclose(t.sum().numpy(), self.x.sum())
        np.testing.assert_allclose(t.sum(axis=1).numpy(), self.x.sum(axis=1))
        np.testing.assert_allclose(t.sum(axis=2, keepdims=True).numpy(),
                                   self.x.sum(axis=2, keepdims=True))

    def test_mean_max_min(self):
        t = Tensor(self.x)
        np.testing.assert_allclose(t.mean(axis=0).numpy(), self.x.mean(axis=0))
        np.testing.assert_allclose(t.max(axis=1).numpy(), self.x.max(axis=1))
        np.testing.assert_allclose(t.min(axis=2).numpy(), self.x.min(axis=2))

    def test_reshape_transpose(self):
        t = Tensor(self.x)
        np.testing.assert_allclose(t.reshape(6, 4).numpy(), self.x.reshape(6, 4))
        np.testing.assert_allclose(t.transpose(2, 0, 1).numpy(), self.x.transpose(2, 0, 1))
        np.testing.assert_allclose(t.swapaxes(0, 1).numpy(), self.x.swapaxes(0, 1))

    def test_squeeze_unsqueeze(self):
        t = Tensor(np.ones((2, 1, 3)))
        assert t.squeeze(1).shape == (2, 3)
        assert t.unsqueeze(0).shape == (1, 2, 1, 3)
        with pytest.raises(ValueError):
            t.squeeze(0)

    def test_getitem(self):
        t = Tensor(self.x)
        np.testing.assert_allclose(t[0].numpy(), self.x[0])
        np.testing.assert_allclose(t[:, 1, :].numpy(), self.x[:, 1, :])
        indices = np.array([1, 0, 1])
        np.testing.assert_allclose(t[indices].numpy(), self.x[indices])

    def test_cat_and_stack(self):
        a, b = np.ones((2, 3)), np.zeros((2, 3))
        np.testing.assert_allclose(Tensor.cat([Tensor(a), Tensor(b)], axis=0).numpy(),
                                   np.concatenate([a, b], axis=0))
        np.testing.assert_allclose(Tensor.stack([Tensor(a), Tensor(b)], axis=1).numpy(),
                                   np.stack([a, b], axis=1))

    def test_where(self):
        cond = np.array([True, False, True])
        a, b = Tensor(np.ones(3)), Tensor(np.zeros(3))
        np.testing.assert_allclose(Tensor.where(cond, a, b).numpy(), [1.0, 0.0, 1.0])

    def test_argmax_and_comparisons(self):
        t = Tensor(np.array([[0.2, 0.8], [0.9, 0.1]]))
        np.testing.assert_array_equal(t.argmax(axis=1), [1, 0])
        assert (t > 0.5).sum() == 2


class TestElementwise:
    def test_exp_log_sqrt_abs(self):
        x = np.array([0.5, 1.0, 2.0])
        t = Tensor(x)
        np.testing.assert_allclose(t.exp().numpy(), np.exp(x))
        np.testing.assert_allclose(t.log().numpy(), np.log(x))
        np.testing.assert_allclose(t.sqrt().numpy(), np.sqrt(x))
        np.testing.assert_allclose(Tensor(-x).abs().numpy(), x)

    def test_activations(self):
        x = np.linspace(-3, 3, 7)
        t = Tensor(x)
        np.testing.assert_allclose(t.tanh().numpy(), np.tanh(x))
        np.testing.assert_allclose(t.sigmoid().numpy(), 1 / (1 + np.exp(-x)), rtol=1e-12)
        np.testing.assert_allclose(t.relu().numpy(), np.maximum(x, 0))

    def test_clip(self):
        x = np.array([-2.0, 0.5, 3.0])
        np.testing.assert_allclose(Tensor(x).clip(-1.0, 1.0).numpy(), [-1.0, 0.5, 1.0])


class TestGradFlags:
    def test_no_grad_context(self):
        with no_grad():
            t = Tensor(np.ones(3), requires_grad=True)
            out = t * 2
        assert not t.requires_grad
        assert not out.requires_grad

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward(np.ones(3))

    def test_backward_scalar_only_without_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_shape_check(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = t * 2
        with pytest.raises(ValueError):
            out.backward(np.ones(4))
