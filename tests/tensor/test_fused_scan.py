"""Parity, numerical-gradient and node-count tests for the scan-era kernels.

Covers the N-lane scan core (``lane_scan``) behind the whole-sequence
recurrent kernels (``gru_scan`` / ``lstm_scan`` / the bidirectional wrappers /
the MoSE expert lanes), the fused attention pooling / layer norm, and the
fused ``masked_mean`` / ``mix_experts`` pooling kernels.  Each kernel is
checked against the composed-primitive path (the per-step cell loops / the
primitive chains) in both float64 (1e-6) and float32 (looser, error
accumulates across time steps), including variable-length masked batches,
plus float64 central-difference gradients and the ``no_grad()`` /
O(1)-node-count fast-path guarantees.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import GRU, LSTM, AttentionPooling, LayerNorm, lstm_expert_scan
from repro.tensor import (
    Tensor,
    default_dtype,
    functional as F,
    fused,
    fused_kernels,
    graph_nodes_created,
    no_grad,
)

RNG = np.random.default_rng(314)

DTYPES = (np.float64, np.float32)
#: Scan backward replays T steps, so float32 error compounds with sequence
#: length; the tolerances below hold with margin for the shapes used here.
TOLS = {np.float64: dict(atol=1e-6, rtol=1e-5),
        np.float32: dict(atol=5e-4, rtol=5e-3)}


def variable_length_mask(batch: int, seq_len: int) -> np.ndarray:
    """Trailing-padding mask with one full row, short rows and a 1-token row."""
    lengths = [seq_len, max(seq_len // 2, 1), 1][:batch]
    while len(lengths) < batch:
        lengths.append(max(seq_len - len(lengths), 1))
    mask = np.zeros((batch, seq_len))
    for row, length in enumerate(lengths):
        mask[row, :length] = 1.0
    return mask


def run_encoder(encoder, x: np.ndarray, mask, fused_on: bool):
    """Loss + every gradient of one encoder pass on the requested path."""
    with fused_kernels(fused_on):
        encoder.zero_grad()
        xt = Tensor(x.copy(), requires_grad=True)
        states, final = encoder(xt, mask=mask)
        loss = (states * states).mean() + (final * final).sum()
        loss.backward()
        return (loss.item(), states.numpy().copy(), final.numpy().copy(),
                xt.grad.copy(), [p.grad.copy() for p in encoder.parameters()])


def assert_encoder_parity(encoder_cls, dtype, bidirectional, masked):
    batch, seq_len, input_dim, hidden_dim = 3, 6, 5, 4
    with default_dtype(dtype):
        encoder = encoder_cls(input_dim, hidden_dim, bidirectional=bidirectional,
                              rng=np.random.default_rng(7))
        x = np.asarray(RNG.standard_normal((batch, seq_len, input_dim)), dtype=dtype)
        mask = variable_length_mask(batch, seq_len) if masked else None
        fused_res = run_encoder(encoder, x, mask, fused_on=True)
        composed_res = run_encoder(encoder, x, mask, fused_on=False)
    tol = TOLS[dtype]
    assert abs(fused_res[0] - composed_res[0]) <= tol["atol"] * 10
    for got, expected in zip(fused_res[1:4], composed_res[1:4]):
        assert got.dtype == expected.dtype == dtype
        np.testing.assert_allclose(got, expected, **tol)
    for got, expected in zip(fused_res[4], composed_res[4]):
        np.testing.assert_allclose(got, expected, **tol)


# --------------------------------------------------------------------------- #
# Scan vs per-step parity                                                      #
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("bidirectional", (False, True))
@pytest.mark.parametrize("masked", (False, True))
class TestScanParity:
    def test_gru_scan(self, dtype, bidirectional, masked):
        assert_encoder_parity(GRU, dtype, bidirectional, masked)

    def test_lstm_scan(self, dtype, bidirectional, masked):
        assert_encoder_parity(LSTM, dtype, bidirectional, masked)


class TestScanSemantics:
    def test_masked_final_state_is_last_valid_state(self):
        gru = GRU(4, 3, bidirectional=False, rng=np.random.default_rng(0))
        x = RNG.standard_normal((2, 7, 4))
        mask = np.zeros((2, 7))
        mask[0, :7] = 1.0
        mask[1, :3] = 1.0
        states, final = gru(Tensor(x), mask=mask)
        # Padded positions carry the last valid state forward.
        np.testing.assert_allclose(states.numpy()[1, 3:],
                                   np.broadcast_to(states.numpy()[1, 2], (4, 3)))
        np.testing.assert_allclose(final.numpy()[1], states.numpy()[1, 2])

    @pytest.mark.parametrize("encoder_cls", (GRU, LSTM))
    def test_masked_matches_truncated_sequence(self, encoder_cls):
        """A trailing-padded row must encode exactly like the truncated text."""
        encoder = encoder_cls(4, 3, bidirectional=True, rng=np.random.default_rng(1))
        x = RNG.standard_normal((1, 6, 4))
        valid = 4
        mask = np.zeros((1, 6))
        mask[0, :valid] = 1.0
        _, final_masked = encoder(Tensor(x), mask=mask)
        _, final_truncated = encoder(Tensor(x[:, :valid]))
        np.testing.assert_allclose(final_masked.numpy(), final_truncated.numpy(),
                                   atol=1e-12)

    def test_fully_masked_row_keeps_zero_state(self):
        lstm = LSTM(4, 3, bidirectional=False, rng=np.random.default_rng(2))
        x = RNG.standard_normal((2, 5, 4))
        mask = np.zeros((2, 5))
        mask[0, :] = 1.0  # row 1 is entirely padding
        states, final = lstm(Tensor(x), mask=mask)
        np.testing.assert_allclose(states.numpy()[1], 0.0)
        np.testing.assert_allclose(final.numpy()[1], 0.0)

    def test_mask_shape_mismatch_raises(self):
        gru = GRU(4, 3, rng=np.random.default_rng(3))
        with pytest.raises(ValueError):
            gru(Tensor(RNG.standard_normal((2, 5, 4))), mask=np.ones((2, 4)))


# --------------------------------------------------------------------------- #
# Expert lanes: N recurrences over the same input in one scan node             #
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("masked", (False, True))
class TestExpertLaneScan:
    def test_lstm_expert_lanes_match_sequential_experts(self, dtype, masked):
        batch, seq_len, input_dim, hidden_dim, num_experts = 3, 6, 5, 4, 3
        with default_dtype(dtype):
            experts = [LSTM(input_dim, hidden_dim, bidirectional=False,
                            rng=np.random.default_rng(40 + i))
                       for i in range(num_experts)]
            x = np.asarray(RNG.standard_normal((batch, seq_len, input_dim)),
                           dtype=dtype)
            mask = variable_length_mask(batch, seq_len) if masked else None

            def run(fused_on):
                with fused_kernels(fused_on):
                    for expert in experts:
                        expert.zero_grad()
                    xt = Tensor(x.copy(), requires_grad=True)
                    if fused_on:
                        states = lstm_expert_scan(experts, xt, mask=mask)
                    else:
                        states = Tensor.cat(
                            [expert(xt, mask=mask)[0] for expert in experts],
                            axis=2)
                    loss = (states * states).mean()
                    loss.backward()
                    return (loss.item(), states.numpy().copy(), xt.grad.copy(),
                            [p.grad.copy() for expert in experts
                             for p in expert.parameters()])

            fused_res = run(True)
            composed_res = run(False)
        tol = TOLS[dtype]
        assert abs(fused_res[0] - composed_res[0]) <= tol["atol"] * 10
        assert fused_res[1].dtype == composed_res[1].dtype == dtype
        np.testing.assert_allclose(fused_res[1], composed_res[1], **tol)
        np.testing.assert_allclose(fused_res[2], composed_res[2], **tol)
        for got, expected in zip(fused_res[3], composed_res[3]):
            np.testing.assert_allclose(got, expected, **tol)

    def test_expert_scan_is_one_node(self, dtype, masked):
        with default_dtype(dtype):
            experts = [LSTM(4, 3, rng=np.random.default_rng(50 + i))
                       for i in range(4)]
            x = Tensor(np.asarray(RNG.standard_normal((2, 5, 4)), dtype=dtype))
            mask = variable_length_mask(2, 5) if masked else None
            before = graph_nodes_created()
            states = lstm_expert_scan(experts, x, mask=mask)
            assert graph_nodes_created() - before <= 1
            assert states.shape == (2, 5, 4 * 3)
def numerical_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        upper = fn()
        array[index] = original - eps
        lower = fn()
        array[index] = original
        grad[index] = (upper - lower) / (2 * eps)
        iterator.iternext()
    return grad


def assert_numerical(build_loss, *arrays):
    with fused_kernels(True):
        tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        loss = build_loss(*tensors)
        loss.backward()
        for tensor in tensors:
            def closure(t=tensor):
                fixed = [Tensor(other.data) if other is not t else Tensor(t.data)
                         for other in tensors]
                return build_loss(*fixed).item()

            numeric = numerical_gradient(closure, tensor.data)
            np.testing.assert_allclose(tensor.grad, numeric, atol=1e-6, rtol=1e-4)


class TestScanNumericalGradients:
    @pytest.mark.parametrize("reverse", (False, True))
    def test_gru_scan(self, reverse):
        cell = GRU(3, 2, rng=np.random.default_rng(5)).forward_cell
        x = RNG.standard_normal((2, 3, 3))
        h0 = RNG.standard_normal((2, 2))
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        weights = [cell.weight_ih.data.copy(), cell.weight_hh.data.copy(),
                   cell.bias.data.copy()]
        assert_numerical(
            lambda xt, ht, wih, whh, b: (fused.gru_scan(
                xt, ht, wih, whh, b, mask=mask, reverse=reverse) ** 2).sum(),
            x, h0, *weights)

    @pytest.mark.parametrize("reverse", (False, True))
    def test_lstm_scan(self, reverse):
        cell = LSTM(3, 2, rng=np.random.default_rng(6)).forward_cell
        x = RNG.standard_normal((2, 3, 3))
        h0 = RNG.standard_normal((2, 2))
        c0 = RNG.standard_normal((2, 2))
        mask = np.array([[1.0, 1.0, 1.0], [1.0, 1.0, 0.0]])
        weights = [cell.weight_ih.data.copy(), cell.weight_hh.data.copy(),
                   cell.bias.data.copy()]
        assert_numerical(
            lambda xt, ht, ct, wih, whh, b: (fused.lstm_scan(
                xt, ht, ct, wih, whh, b, mask=mask, reverse=reverse) ** 2).sum(),
            x, h0, c0, *weights)

    def test_lstm_expert_lanes(self):
        """Two LSTM lanes with opposite directions and a shared mask."""
        cells = [LSTM(3, 2, rng=np.random.default_rng(8 + i)).forward_cell
                 for i in range(2)]
        x = RNG.standard_normal((2, 3, 3))
        h0 = [RNG.standard_normal((2, 2)) for _ in range(2)]
        c0 = [RNG.standard_normal((2, 2)) for _ in range(2)]
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        weights = [a for cell in cells
                   for a in (cell.weight_ih.data.copy(), cell.weight_hh.data.copy(),
                             cell.bias.data.copy())]
        assert_numerical(
            lambda xt, h0a, h0b, c0a, c0b, wa, wha, ba, wb, whb, bb:
            (fused.lane_scan("lstm", xt, (h0a, h0b), (c0a, c0b), (wa, wb),
                             (wha, whb), (ba, bb), mask=mask,
                             lane_reverse=(False, True)) ** 2).sum(),
            x, *h0, *c0, *weights)

    def test_gru_expert_lanes(self):
        """Three GRU lanes (one reversed) over the same masked input."""
        cells = [GRU(3, 2, rng=np.random.default_rng(12 + i)).forward_cell
                 for i in range(3)]
        x = RNG.standard_normal((2, 3, 3))
        h0 = [RNG.standard_normal((2, 2)) for _ in range(3)]
        mask = np.array([[1.0, 1.0, 1.0], [1.0, 1.0, 0.0]])
        weights = [a for cell in cells
                   for a in (cell.weight_ih.data.copy(), cell.weight_hh.data.copy(),
                             cell.bias.data.copy())]
        assert_numerical(
            lambda xt, h0a, h0b, h0c, wa, wha, ba, wb, whb, bb, wc, whc, bc:
            (fused.lane_scan("gru", xt, (h0a, h0b, h0c), None, (wa, wb, wc),
                             (wha, whb, whc), (ba, bb, bc), mask=mask,
                             lane_reverse=(False, True, False)) ** 2).sum(),
            x, *h0, *weights)

    def test_attention_pooling(self):
        x = RNG.standard_normal((2, 4, 3))
        scores = RNG.standard_normal((2, 4))
        mask = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 1.0, 0.0, 0.0]])
        assert_numerical(
            lambda xt, st: (fused.attention_pooling(xt, st, mask=mask) ** 2).sum(),
            x, scores)

    def test_masked_mean(self):
        x = RNG.standard_normal((3, 4, 5))
        mask = np.array([[1.0, 1.0, 1.0, 0.0],
                         [1.0, 0.0, 0.0, 0.0],
                         [0.0, 0.0, 0.0, 0.0]])
        assert_numerical(
            lambda xt: (fused.masked_mean(xt, mask) ** 2).sum(), x)

    def test_mix_experts(self):
        stacked = RNG.standard_normal((3, 4, 5))
        gate = RNG.standard_normal((3, 4))
        assert_numerical(
            lambda st, gt: (fused.mix_experts(st, gt) ** 2).sum(), stacked, gate)

    def test_layer_norm(self):
        x = RNG.standard_normal((3, 5))
        w = RNG.standard_normal(5) * 0.5 + 1.0
        b = RNG.standard_normal(5) * 0.1
        assert_numerical(
            lambda xt, wt, bt: (fused.layer_norm(xt, wt, bt) ** 2).sum(), x, w, b)


# --------------------------------------------------------------------------- #
# Attention pooling and layer norm parity                                      #
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dtype", DTYPES)
class TestAttentionLayerNormParity:
    @pytest.mark.parametrize("masked", (False, True))
    def test_attention_pooling(self, dtype, masked):
        with default_dtype(dtype):
            pool = AttentionPooling(5, hidden_dim=3, rng=np.random.default_rng(4))
            x = np.asarray(RNG.standard_normal((3, 6, 5)), dtype=dtype)
            mask = variable_length_mask(3, 6) if masked else None

            def run(fused_on):
                with fused_kernels(fused_on):
                    pool.zero_grad()
                    xt = Tensor(x.copy(), requires_grad=True)
                    out = pool(xt, mask=mask)
                    (out * out).sum().backward()
                    return (out.numpy().copy(), xt.grad.copy(),
                            [p.grad.copy() for p in pool.parameters()])

            fused_out, fused_xg, fused_pg = run(True)
            composed_out, composed_xg, composed_pg = run(False)
        tol = TOLS[dtype]
        assert fused_out.dtype == composed_out.dtype == dtype
        np.testing.assert_allclose(fused_out, composed_out, **tol)
        np.testing.assert_allclose(fused_xg, composed_xg, **tol)
        for got, expected in zip(fused_pg, composed_pg):
            np.testing.assert_allclose(got, expected, **tol)

    def test_layer_norm(self, dtype):
        with default_dtype(dtype):
            norm = LayerNorm(6)
            x = np.asarray(RNG.standard_normal((4, 7, 6)) * 3 + 1, dtype=dtype)

            def run(fused_on):
                with fused_kernels(fused_on):
                    norm.zero_grad()
                    xt = Tensor(x.copy(), requires_grad=True)
                    out = norm(xt)
                    (out * out).mean().backward()
                    return (out.numpy().copy(), xt.grad.copy(),
                            [p.grad.copy() for p in norm.parameters()])

            fused_out, fused_xg, fused_pg = run(True)
            composed_out, composed_xg, composed_pg = run(False)
        tol = TOLS[dtype]
        assert fused_out.dtype == dtype
        np.testing.assert_allclose(fused_out, composed_out, **tol)
        np.testing.assert_allclose(fused_xg, composed_xg, **tol)
        for got, expected in zip(fused_pg, composed_pg):
            np.testing.assert_allclose(got, expected, **tol)


# --------------------------------------------------------------------------- #
# Fused masked mean and expert mixing parity                                   #
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("dtype", DTYPES)
class TestPoolingMixParity:
    def test_masked_mean(self, dtype):
        with default_dtype(dtype):
            x = np.asarray(RNG.standard_normal((4, 6, 5)), dtype=dtype)
            mask = variable_length_mask(4, 6)
            mask[3] = 0.0  # fully-padded row: mean of nothing is zero

            def run(fused_on):
                with fused_kernels(fused_on):
                    xt = Tensor(x.copy(), requires_grad=True)
                    out = F.masked_mean(xt, mask, axis=1)
                    (out * out).sum().backward()
                    return out.numpy().copy(), xt.grad.copy()

            fused_out, fused_grad = run(True)
            composed_out, composed_grad = run(False)
        tol = TOLS[dtype]
        assert fused_out.dtype == composed_out.dtype == dtype
        np.testing.assert_allclose(fused_out, composed_out, **tol)
        np.testing.assert_allclose(fused_grad, composed_grad, **tol)
        np.testing.assert_allclose(fused_out[3], 0.0, atol=tol["atol"])

    def test_mix_experts(self, dtype):
        from repro.models.base import mix_experts

        with default_dtype(dtype):
            expert_data = [np.asarray(RNG.standard_normal((3, 5)), dtype=dtype)
                           for _ in range(4)]
            gate_data = np.asarray(RNG.standard_normal((3, 4)), dtype=dtype)

            def run(fused_on):
                with fused_kernels(fused_on):
                    experts = [Tensor(a.copy(), requires_grad=True)
                               for a in expert_data]
                    gate = Tensor(gate_data.copy(), requires_grad=True)
                    out = mix_experts(experts, gate)
                    (out * out).sum().backward()
                    return (out.numpy().copy(), gate.grad.copy(),
                            [e.grad.copy() for e in experts])

            fused_res = run(True)
            composed_res = run(False)
        tol = TOLS[dtype]
        assert fused_res[0].dtype == composed_res[0].dtype == dtype
        np.testing.assert_allclose(fused_res[0], composed_res[0], **tol)
        np.testing.assert_allclose(fused_res[1], composed_res[1], **tol)
        for got, expected in zip(fused_res[2], composed_res[2]):
            np.testing.assert_allclose(got, expected, **tol)

    def test_single_node_under_grad_and_zero_under_no_grad(self, dtype):
        with default_dtype(dtype):
            x = Tensor(np.asarray(RNG.standard_normal((2, 5, 4)), dtype=dtype),
                       requires_grad=True)
            stacked = Tensor(np.asarray(RNG.standard_normal((2, 3, 4)), dtype=dtype),
                             requires_grad=True)
            gate = Tensor(np.asarray(RNG.standard_normal((2, 3)), dtype=dtype))
            mask = variable_length_mask(2, 5)
            before = graph_nodes_created()
            fused.masked_mean(x, mask)
            fused.mix_experts(stacked, gate)
            assert graph_nodes_created() - before == 2
            before = graph_nodes_created()
            with no_grad():
                fused.masked_mean(x, mask)
                fused.mix_experts(stacked, gate)
            assert graph_nodes_created() == before


# --------------------------------------------------------------------------- #
# Graph-size guarantees                                                        #
# --------------------------------------------------------------------------- #
class TestScanGraphSize:
    @pytest.mark.parametrize("encoder_cls", (GRU, LSTM))
    def test_encoder_forward_is_constant_nodes_in_seq_len(self, encoder_cls):
        def nodes_for(seq_len):
            encoder = encoder_cls(4, 3, bidirectional=True,
                                  rng=np.random.default_rng(0))
            x = Tensor(RNG.standard_normal((2, seq_len, 4)))
            before = graph_nodes_created()
            encoder(x)
            return graph_nodes_created() - before

        short, long = nodes_for(4), nodes_for(32)
        assert short == long  # O(1) in sequence length
        # 2 scan nodes + 2 final-state slices + 2 concatenations.
        assert short <= 8

    def test_scan_kernels_build_zero_nodes_under_no_grad(self):
        gru = GRU(4, 3, bidirectional=True, rng=np.random.default_rng(1))
        lstm = LSTM(4, 3, bidirectional=True, rng=np.random.default_rng(2))
        pool = AttentionPooling(4, hidden_dim=3, rng=np.random.default_rng(3))
        norm = LayerNorm(4)
        x = Tensor(RNG.standard_normal((2, 5, 4)))
        mask = variable_length_mask(2, 5)
        before = graph_nodes_created()
        with no_grad():
            gru(x, mask=mask)
            lstm(x, mask=mask)
            pool(x, mask=mask)
            norm(x)
        assert graph_nodes_created() == before
