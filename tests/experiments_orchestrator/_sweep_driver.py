"""Subprocess driver for the chaos-narrative test.

Runs a journaled parallel sweep described by a JSON payload file.  Lives in
its own process so the test can SIGKILL the *orchestrator itself* mid-sweep
and prove the journal makes the run resumable.  Payload keys: ``specs``
(list of ``{cell_id, kind, params}``), ``journal_dir``, ``jobs``, ``resume``,
``attempts``, ``worker_modules``, ``sys_path``.
"""

from __future__ import annotations

import json
import sys


def main(payload_path: str) -> int:
    with open(payload_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    for entry in reversed(payload.get("sys_path", [])):
        if entry not in sys.path:
            sys.path.insert(0, entry)

    from repro.experiments.orchestrator import (
        CellSpec,
        OrchestratorConfig,
        run_sweep,
    )
    from repro.reliability.retry import RetryPolicy

    specs = [CellSpec(cell_id=spec["cell_id"], kind=spec["kind"],
                      params=spec.get("params", {}))
             for spec in payload["specs"]]
    config = OrchestratorConfig(
        jobs=payload.get("jobs", 2),
        worker_modules=tuple(payload.get("worker_modules", ())),
        retry=RetryPolicy(attempts=payload.get("attempts", 3),
                          base_delay_s=0.0, max_delay_s=0.0, jitter=0.0,
                          retry_on=(Exception,)),
        on_progress=lambda line: print(f"driver: {line}", flush=True))
    result = run_sweep(specs, config=config,
                       journal_dir=payload["journal_dir"],
                       resume=payload.get("resume", False))
    print(json.dumps({"ok": result.ok, "results": result.results}), flush=True)
    return 0 if result.ok else 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1]))
