"""Cell functions for the orchestrator suite, importable inside spawn workers.

Referenced by dotted path (``"_sweep_cells:counting_cell"``): pytest puts this
directory on ``sys.path`` when collecting the suite, and multiprocessing's
spawn preparation ships the parent's ``sys.path`` to every worker, so the same
path resolves in-process (serial ground truth) and in the pool.

The cells coordinate with tests through files under ``params["dir"]`` — worker
processes share no memory with the test, but they share a tmp directory:

* ``counting_cell`` appends one line per execution to ``count_<cell>.log`` —
  the *cell-execution counter* the resume tests pin (a journaled completed
  cell must never run again).
* ``flaky_cell`` counts its own invocations the same way and fails the first
  ``fail_times`` of them — retry-budget behaviour independent of which worker
  runs each attempt.
* ``gated_cell`` writes a ``begin_<cell>_<pid>`` marker, then blocks while
  ``params["block"]`` exists — giving the chaos test a window (and a pid) to
  SIGKILL mid-cell.
* ``sleepy_cell`` sleeps a fixed time — wall-clock watchdog fodder.
"""

from __future__ import annotations

import glob
import os
import time


def _count(directory: str, name: str) -> int:
    """Append one execution line; return this execution's 1-based index."""
    path = os.path.join(directory, f"count_{name}.log")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{os.getpid()}\n")
    with open(path, "r", encoding="utf-8") as handle:
        return len(handle.readlines())


def executions(directory: str, name: str) -> int:
    """How many times a counting/flaky cell has executed so far (0 if never)."""
    path = os.path.join(directory, f"count_{name}.log")
    if not os.path.exists(path):
        return 0
    with open(path, "r", encoding="utf-8") as handle:
        return len(handle.readlines())


def square_cell(spec):
    x = spec.params["x"]
    return {"x": x, "value": (x * 37 + 11) % 97}


def counting_cell(spec):
    _count(spec.params["dir"], spec.cell_id)
    return square_cell(spec)


def flaky_cell(spec):
    tries = _count(spec.params["dir"], spec.cell_id)
    if tries <= spec.params["fail_times"]:
        raise RuntimeError(f"flaky cell failing on try {tries}")
    return square_cell(spec)


def begin_markers(directory: str, cell_id: str) -> list[int]:
    """Pids of every execution a gated cell has started, oldest first."""
    paths = glob.glob(os.path.join(directory, f"begin_{cell_id}_*"))
    paths.sort(key=os.path.getmtime)
    return [int(path.rsplit("_", 1)[1]) for path in paths]


def gated_cell(spec):
    params = spec.params
    _count(params["dir"], spec.cell_id)
    marker = os.path.join(params["dir"], f"begin_{spec.cell_id}_{os.getpid()}")
    with open(marker, "w", encoding="utf-8"):
        pass
    deadline = time.monotonic() + 60.0
    while os.path.exists(params["block"]) and time.monotonic() < deadline:
        time.sleep(0.05)
    return square_cell(spec)


def sleepy_cell(spec):
    time.sleep(spec.params["sleep_s"])
    return square_cell(spec)
