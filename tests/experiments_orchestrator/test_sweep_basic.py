"""Core orchestrator semantics: determinism, retries, timeouts, supervision.

The serial in-process path (``jobs=0``) is the ground truth; the pool must
reproduce its results exactly.  Fault behaviour is driven through the seeded
``orchestrate.*`` sites so every failure here replays identically.
"""

from __future__ import annotations

import json

import pytest

import _sweep_cells
from repro.experiments.orchestrator import (
    CellSpec,
    OrchestratorConfig,
    SweepFailed,
    register_cell_kind,
    resolve_cell_kind,
    run_sweep,
    sweep_fingerprint,
)
from repro.reliability import FaultPlan
from repro.reliability.faults import inject

CELLS = "_sweep_cells"


def _specs(n=5, kind=f"{CELLS}:square_cell", **extra):
    return [CellSpec(cell_id=f"c{i}", kind=kind, params={"x": i, **extra})
            for i in range(n)]


def _dumps(result):
    return json.dumps(result.results, sort_keys=True)


def test_parallel_matches_serial_and_keeps_spec_order(tmp_path):
    specs = _specs()
    serial = run_sweep(specs, config=OrchestratorConfig(jobs=0),
                       journal_dir=tmp_path / "js")
    parallel = run_sweep(specs, config=OrchestratorConfig(
        jobs=2, worker_modules=(CELLS,)), journal_dir=tmp_path / "jp")
    assert serial.ok and parallel.ok
    assert _dumps(serial) == _dumps(parallel)
    # outcomes come back in spec order regardless of completion order
    assert [o.spec.cell_id for o in parallel.outcomes] == [s.cell_id for s in specs]
    # resuming a finished journal reuses every cell without re-running
    again = run_sweep(specs, config=OrchestratorConfig(
        jobs=2, worker_modules=(CELLS,)), journal_dir=tmp_path / "jp",
        resume=True)
    assert all(o.status == "cached" for o in again.outcomes)
    assert _dumps(again) == _dumps(serial)


def test_duplicate_cell_ids_refused():
    specs = [CellSpec("same", f"{CELLS}:square_cell", {"x": 1}),
             CellSpec("same", f"{CELLS}:square_cell", {"x": 2})]
    with pytest.raises(ValueError, match="duplicate cell_id 'same'"):
        run_sweep(specs, config=OrchestratorConfig(jobs=0))


def test_unknown_kind_is_a_readable_cell_failure():
    with pytest.raises(ValueError, match="unknown cell kind"):
        resolve_cell_kind("no_such_kind")
    with pytest.raises(ValueError, match="no attribute"):
        resolve_cell_kind(f"{CELLS}:not_a_function")
    result = run_sweep([CellSpec("c0", "no_such_kind", {})],
                       config=OrchestratorConfig(jobs=0))
    assert not result.ok
    assert "unknown cell kind" in result.failures[0].error
    with pytest.raises(SweepFailed, match="c0"):
        result.raise_on_failure()


def test_registered_kind_and_fingerprints():
    register_cell_kind("orchestrator-test-double", lambda spec: {"doubled": spec.params["x"] * 2})
    try:
        result = run_sweep([CellSpec("d", "orchestrator-test-double", {"x": 21})],
                           config=OrchestratorConfig(jobs=0))
        assert result.results["d"] == {"doubled": 42}
    finally:
        from repro.experiments.orchestrator import CELL_KINDS

        del CELL_KINDS["orchestrator-test-double"]
    # fingerprints track params: same grid → same, changed params → different
    assert sweep_fingerprint(_specs()) == sweep_fingerprint(_specs())
    assert sweep_fingerprint(_specs()) != sweep_fingerprint(_specs(extra=1))
    spec = CellSpec("c", f"{CELLS}:square_cell", {"x": 1})
    assert spec.fingerprint() != CellSpec("c", f"{CELLS}:square_cell", {"x": 2}).fingerprint()


def test_injected_flaky_cell_retries_and_replays_exactly(fast_policy):
    specs = _specs()
    baseline = run_sweep(specs, config=OrchestratorConfig(jobs=0))
    plan = FaultPlan(seed=0).fail(
        "orchestrate.cell", error=RuntimeError("transient store glitch"),
        when=lambda d: d.get("cell") == "c2" and d.get("attempt") == 1)

    def run_once():
        with inject(plan):
            return run_sweep(specs, config=OrchestratorConfig(
                jobs=0, retry=fast_policy(attempts=2)))

    first = run_once()
    assert first.ok and first.outcomes[2].attempts == 2
    assert _dumps(first) == _dumps(baseline)
    plan.reset()  # exact replay: same attempts profile, same results
    second = run_once()
    assert [o.attempts for o in second.outcomes] == [o.attempts for o in first.outcomes]
    assert _dumps(second) == _dumps(first)
    assert plan.fired == 1


def test_retry_budget_exhaustion_reports_readably(fast_policy):
    plan = FaultPlan(seed=0).fail(
        "orchestrate.cell", error=RuntimeError("disk on fire"), times=None,
        when=lambda d: d.get("cell") == "c1")
    with inject(plan):
        result = run_sweep(_specs(3), config=OrchestratorConfig(
            jobs=0, retry=fast_policy(attempts=3)))
    assert not result.ok
    [failure] = result.failures
    line = failure.describe()
    assert failure.spec.cell_id == "c1" and failure.attempts == 3
    assert "c1" in line and "3 attempt" in line and "disk on fire" in line
    # the other cells still completed
    assert set(result.results) == {"c0", "c2"}


def test_cell_timeout_serial(fast_policy):
    specs = [CellSpec("slow", f"{CELLS}:sleepy_cell", {"x": 0, "sleep_s": 5.0}),
             CellSpec("fast", f"{CELLS}:square_cell", {"x": 1})]
    result = run_sweep(specs, config=OrchestratorConfig(
        jobs=0, retry=fast_policy(attempts=1), cell_timeout_s=0.3))
    assert not result.ok
    assert "wall-clock budget" in result.failures[0].error
    assert "fast" in result.results


def test_cell_timeout_parallel_kills_worker_and_continues(tmp_path, fast_policy):
    specs = [CellSpec("slow", f"{CELLS}:sleepy_cell", {"x": 0, "sleep_s": 30.0}),
             CellSpec("fast", f"{CELLS}:square_cell", {"x": 1})]
    result = run_sweep(specs, config=OrchestratorConfig(
        jobs=2, worker_modules=(CELLS,), retry=fast_policy(attempts=1),
        cell_timeout_s=1.0))
    assert not result.ok
    assert "wall-clock budget" in result.failures[0].error
    assert result.results["fast"] == {"x": 1, "value": 48}


def test_worker_startup_failure_is_fatal_and_readable():
    with pytest.raises(SweepFailed, match="cannot start"):
        run_sweep(_specs(2), config=OrchestratorConfig(
            jobs=1, worker_modules=("no_such_module_anywhere_xyz",)))


def test_worker_death_respawns_and_redispatches(tmp_path, fast_policy):
    """A chaos plan kills each slot's first cell attempt; no cell is lost."""
    specs = _specs()
    baseline = run_sweep(specs, config=OrchestratorConfig(jobs=0))
    kill = FaultPlan(seed=0).fail("orchestrate.cell", error=SystemExit)
    result = run_sweep(specs, config=OrchestratorConfig(
        jobs=2, worker_modules=(CELLS,), retry=fast_policy(attempts=3),
        fault_plans={0: kill, 1: FaultPlan(seed=1).fail("orchestrate.cell",
                                                        error=SystemExit)}))
    assert result.ok
    assert _dumps(result) == _dumps(baseline)
    # each armed slot's first dispatch was killed and cost one extra attempt
    # (>= 1 because at least one slot dispatches before the grid drains)
    extra = sum(o.attempts for o in result.outcomes) - len(specs)
    assert 1 <= extra <= 2


def test_restart_budget_exhaustion_fails_readably(fast_policy):
    """Workers that keep dying must end the sweep with a diagnosis, not a hang.

    ``_dying_module`` raises SystemExit at import — a BaseException, so every
    incarnation of the worker dies before reporting ready (fault plans only
    arm the first incarnation; a persistent fault needs a persistent cause).
    """
    with pytest.raises(SweepFailed, match="restart budget"):
        run_sweep(_specs(2), config=OrchestratorConfig(
            jobs=1, worker_modules=("_dying_module",), max_restarts=2,
            retry=fast_policy(attempts=10)))
