"""Importing this module kills the process — restart-budget test fodder.

SystemExit is a BaseException, so the sweep worker's per-cell/startup
exception handling (``except Exception``) does not contain it: the worker
dies before ever reporting ready, on every incarnation, which is how the
suite exhausts the supervisor's respawn budget deterministically.
"""

raise SystemExit(3)
