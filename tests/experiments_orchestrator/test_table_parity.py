"""Parallel sweeps must reproduce the committed tables byte-for-byte.

Two pins, each exercised under both ``REPRO_DTYPE`` policies:

* the stats tables (Table IV/V) regenerated through the *parallel* pool match
  the committed ``benchmarks/results`` files byte-identically — these cells
  pin their own scale and seed, so they are environment-independent;
* a training grid (real ``train_baseline`` cells, which consume loader
  shuffle streams and the fallback RNG) run through the pool matches the
  serial in-process ground truth exactly, dtype pinned per-cell via the
  config override so the workers install the right engine policy themselves.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.orchestrator import (
    CellSpec,
    OrchestratorConfig,
    run_sweep,
    table_cell_specs,
)

SUITE_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(SUITE_DIR))
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")

DTYPES = ("float64", "float32")


@pytest.mark.parametrize("dtype", DTYPES)
def test_parallel_stats_tables_match_committed_bytes(tmp_path, monkeypatch, dtype):
    monkeypatch.setenv("REPRO_DTYPE", dtype)  # workers inherit the env
    specs = table_cell_specs(["table4", "table5"], config={"dtype": dtype})
    result = run_sweep(specs, config=OrchestratorConfig(jobs=2),
                       journal_dir=tmp_path / "journal")
    assert result.ok
    for cell_id in ("table4", "table5"):
        payload = result.results[cell_id]
        committed = os.path.join(RESULTS_DIR, f"{payload['output']}.txt")
        with open(committed, "r", encoding="utf-8") as handle:
            assert payload["text"] + "\n" == handle.read(), (
                f"parallel {cell_id} regeneration diverged from the committed "
                f"{committed} under {dtype}")


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.watchdog(600)
def test_parallel_training_grid_matches_serial_ground_truth(tmp_path, dtype):
    overrides = {"scale": 0.05, "epochs": 1, "max_length": 16, "dtype": dtype}
    specs = [CellSpec(cell_id=f"baseline-{name}", kind="baseline",
                      params={"name": name, "dataset": "chinese",
                              "config": overrides})
             for name in ("textcnn", "bigru")]
    serial = run_sweep(specs, config=OrchestratorConfig(jobs=0),
                       journal_dir=tmp_path / "js")
    parallel = run_sweep(specs, config=OrchestratorConfig(jobs=2),
                         journal_dir=tmp_path / "jp")
    assert serial.ok and parallel.ok
    assert (json.dumps(serial.results, sort_keys=True)
            == json.dumps(parallel.results, sort_keys=True))
    # sanity: these were real trained reports, not placeholders
    report = serial.results["baseline-textcnn"]["report"]
    assert 0.0 <= report["f1"] <= 1.0
    assert serial.results["baseline-textcnn"]["dataset"] == "chinese"
