"""Journal robustness: corruption, wrong sweeps and mid-write crashes.

The journal's whole job is to be trustworthy after a disaster — every test
here damages it some way and asserts the failure mode is a readable
:class:`JournalError` naming the damaged file (never a silent re-run-all, and
never a raw traceback from ``json``).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.journal import JOURNAL_FILE, JournalError, RunJournal
from repro.experiments.orchestrator import (
    CellSpec,
    OrchestratorConfig,
    run_sweep,
    sweep_fingerprint,
)
from repro.reliability import FaultPlan
from repro.reliability.faults import InjectedFault, inject

CELLS = "_sweep_cells"


def _specs(n=3):
    return [CellSpec(cell_id=f"c{i}", kind=f"{CELLS}:square_cell",
                     params={"x": i}) for i in range(n)]


def _completed_journal(tmp_path, specs):
    """A journal directory left by a finished serial sweep."""
    journal_dir = tmp_path / "journal"
    result = run_sweep(specs, config=OrchestratorConfig(jobs=0),
                       journal_dir=journal_dir)
    assert result.ok
    return journal_dir


def test_create_refuses_to_clobber_existing_journal(tmp_path):
    specs = _specs()
    journal_dir = _completed_journal(tmp_path, specs)
    with pytest.raises(JournalError, match="already exists"):
        run_sweep(specs, config=OrchestratorConfig(jobs=0),
                  journal_dir=journal_dir)  # no resume=True


def test_resume_refuses_a_different_sweep_fingerprint(tmp_path):
    journal_dir = _completed_journal(tmp_path, _specs())
    changed = [CellSpec(cell_id=f"c{i}", kind=f"{CELLS}:square_cell",
                        params={"x": i + 100}) for i in range(3)]
    with pytest.raises(JournalError, match="different sweep"):
        run_sweep(changed, config=OrchestratorConfig(jobs=0),
                  journal_dir=journal_dir, resume=True)


def test_corrupt_journal_is_refused_naming_the_file(tmp_path):
    specs = _specs()
    journal_dir = _completed_journal(tmp_path, specs)
    path = os.path.join(journal_dir, JOURNAL_FILE)

    # flipped byte inside the payload → checksum failure naming the file
    with open(path, "r", encoding="utf-8") as handle:
        envelope = json.load(handle)
    envelope["payload"]["cells"]["c0"]["attempts"] = 999
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle)
    with pytest.raises(JournalError, match="checksum") as excinfo:
        RunJournal.resume(journal_dir, sweep_fingerprint(specs))
    assert path in str(excinfo.value)

    # outright garbage → invalid-JSON failure naming the file
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{ not json")
    with pytest.raises(JournalError, match="not valid JSON") as excinfo:
        RunJournal.resume(journal_dir, sweep_fingerprint(specs))
    assert path in str(excinfo.value)

    # valid JSON that is not a journal → refused, not KeyError
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"something": "else"}, handle)
    with pytest.raises(JournalError, match="no payload"):
        RunJournal.resume(journal_dir, sweep_fingerprint(specs))


def test_corrupt_cell_result_is_refused_naming_the_file(tmp_path):
    specs = _specs()
    journal_dir = _completed_journal(tmp_path, specs)
    journal = RunJournal.resume(journal_dir, sweep_fingerprint(specs))
    result_path = journal.result_path("c1")
    with open(result_path, "a", encoding="utf-8") as handle:
        handle.write(" ")
    with pytest.raises(JournalError, match="checksum") as excinfo:
        run_sweep(specs, config=OrchestratorConfig(jobs=0),
                  journal_dir=journal_dir, resume=True)
    assert result_path in str(excinfo.value)
    # a deleted result file is reported as missing, not rerun silently
    os.remove(result_path)
    with pytest.raises(JournalError, match="missing"):
        run_sweep(specs, config=OrchestratorConfig(jobs=0),
                  journal_dir=journal_dir, resume=True)


def test_crash_during_journal_write_leaves_previous_journal_usable(tmp_path):
    specs = _specs()
    journal_dir = _completed_journal(tmp_path, specs[:2])
    before = RunJournal.resume(journal_dir, sweep_fingerprint(specs[:2]))
    snapshot = before.snapshot()

    # a new run against the same journal crashes on its very first ledger
    # write (atomic_write_text never runs — the fault fires before it)
    extended = _specs(3)
    plan = FaultPlan(seed=0).fail("orchestrate.journal",
                                  when=lambda d: d.get("op") == "write")
    with inject(plan), pytest.raises(InjectedFault):
        run_sweep(extended, config=OrchestratorConfig(jobs=0),
                  journal_dir=tmp_path / "journal2")
    assert plan.fired == 1
    assert not os.path.exists(tmp_path / "journal2" / JOURNAL_FILE)

    # crash mid-update of the *existing* journal: begin(c0) fires the fault
    plan2 = FaultPlan(seed=0).fail(
        "orchestrate.journal",
        when=lambda d: d.get("op") == "write")
    with inject(plan2), pytest.raises(InjectedFault):
        journal = RunJournal.resume(journal_dir, sweep_fingerprint(specs[:2]))
        journal.begin("c0", specs[0].fingerprint())
    # the on-disk journal is byte-untouched: reload sees the pre-crash state
    after = RunJournal.resume(journal_dir, sweep_fingerprint(specs[:2]))
    assert after.snapshot() == snapshot
    assert after.is_done("c0", specs[0].fingerprint())
    assert after.load_result("c0") == {"x": 0, "value": 11}
