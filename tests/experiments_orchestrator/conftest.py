"""Fixtures for the parallel-orchestrator suite.

Sweep cells install process-global state (dtype policy, global seed) — fine in
a worker process, but the serial ground-truth path runs them *in this
process*, so every test saves and restores the RNG stream and the engine
dtype.  Per-test wall-clock limits come from the repository-root conftest's
shared ``_suite_watchdog`` fixture.
"""

from __future__ import annotations

import pytest

from repro.reliability import active_plan
from repro.reliability.retry import RetryPolicy
from repro.tensor import get_default_dtype, set_default_dtype
from repro.utils import get_rng_state, set_rng_state


@pytest.fixture(autouse=True)
def _isolate_global_state():
    """Restore RNG stream + engine dtype; assert no FaultPlan leaked."""
    rng_state = get_rng_state()
    dtype = get_default_dtype()
    yield
    set_default_dtype(dtype)
    set_rng_state(rng_state)
    assert active_plan() is None, "a FaultPlan leaked out of its inject() block"


@pytest.fixture
def fast_policy():
    """Factory for retry policies with no real backoff (tests stay fast)."""

    def build(attempts: int = 2) -> RetryPolicy:
        return RetryPolicy(attempts=attempts, base_delay_s=0.0,
                           max_delay_s=0.0, jitter=0.0, retry_on=(Exception,))

    return build
