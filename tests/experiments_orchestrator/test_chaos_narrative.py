"""The full disaster narrative the orchestrator exists for.

Start a journaled parallel sweep in a subprocess → SIGKILL the worker running
a cell mid-execution (supervisor respawns + re-dispatches it) → SIGKILL the
orchestrator itself → resume → every journaled completed cell is skipped
(pinned by the cells' own execution counters) and the final results are
byte-identical to an uninterrupted serial run.  Plus the flaky-cell pair:
one that succeeds inside the retry budget and one that exhausts it with a
readable per-cell failure report.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import _sweep_cells
from repro.experiments.journal import JOURNAL_FILE
from repro.experiments.orchestrator import (
    CellSpec,
    OrchestratorConfig,
    run_sweep,
)

CELLS = "_sweep_cells"
SUITE_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(SUITE_DIR)), "src")


def _narrative_specs(work_dir: str, block: str):
    return [
        CellSpec("c0", f"{CELLS}:counting_cell", {"x": 0, "dir": work_dir}),
        CellSpec("c1", f"{CELLS}:counting_cell", {"x": 1, "dir": work_dir}),
        CellSpec("gated", f"{CELLS}:gated_cell",
                 {"x": 2, "dir": work_dir, "block": block}),
        CellSpec("c3", f"{CELLS}:counting_cell", {"x": 3, "dir": work_dir}),
    ]


def _dumps(result):
    return json.dumps(result.results, sort_keys=True)


def _wait_for(predicate, timeout_s: float, what: str):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.05)
    raise AssertionError(f"timed out after {timeout_s}s waiting for {what}")


def _journal_done_cells(journal_dir: str) -> set:
    path = os.path.join(journal_dir, JOURNAL_FILE)
    if not os.path.exists(path):
        return set()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            envelope = json.load(handle)
    except ValueError:  # mid-replace glimpse; atomic writes make this transient
        return set()
    cells = envelope.get("payload", {}).get("cells", {})
    return {cell_id for cell_id, record in cells.items()
            if record.get("status") == "done"}


@pytest.mark.watchdog(240)
def test_sigkill_worker_then_orchestrator_then_resume(tmp_path):
    serial_dir = tmp_path / "serial_world"
    par_dir = tmp_path / "par_world"
    journal_dir = tmp_path / "journal"
    serial_dir.mkdir(), par_dir.mkdir()
    block = par_dir / "block"

    # Ground truth: uninterrupted serial run (its own world dir, no block
    # file, so the gated cell returns immediately).
    serial = run_sweep(
        _narrative_specs(str(serial_dir), str(serial_dir / "no-block")),
        config=OrchestratorConfig(jobs=0))
    assert serial.ok

    # Launch the journaled parallel sweep in its own process.  The gated
    # cell blocks while the block file exists — the chaos window.
    block.touch()
    par_specs = _narrative_specs(str(par_dir), str(block))
    payload = {
        "specs": [{"cell_id": s.cell_id, "kind": s.kind, "params": s.params}
                  for s in par_specs],
        "journal_dir": str(journal_dir),
        "jobs": 2,
        "attempts": 3,
        "worker_modules": [CELLS],
        "sys_path": [SRC_DIR, SUITE_DIR],
    }
    payload_path = tmp_path / "payload.json"
    payload_path.write_text(json.dumps(payload), encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR, SUITE_DIR] + env.get("PYTHONPATH", "").split(os.pathsep))
    driver = subprocess.Popen(
        [sys.executable, os.path.join(SUITE_DIR, "_sweep_driver.py"),
         str(payload_path)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        # Act 1 — SIGKILL the worker mid-cell.  The begin marker names the
        # worker pid currently inside the gated cell.
        pids = _wait_for(
            lambda: _sweep_cells.begin_markers(str(par_dir), "gated"),
            60.0, "the gated cell to start")
        os.kill(pids[0], signal.SIGKILL)

        # The supervisor must respawn the slot and re-dispatch the cell:
        # a second begin marker with a different pid.
        pids = _wait_for(
            lambda: (lambda p: p if len(p) >= 2 else None)(
                _sweep_cells.begin_markers(str(par_dir), "gated")),
            60.0, "the gated cell to be re-dispatched after the worker kill")
        assert pids[1] != pids[0], "re-dispatch must land on a fresh worker"

        # Act 2 — SIGKILL the orchestrator itself once the journal shows all
        # the fast cells completed (the gated cell is still blocked).
        _wait_for(lambda: {"c0", "c1", "c3"} <= _journal_done_cells(str(journal_dir)),
                  60.0, "the fast cells to be journaled done")
        driver.kill()
        driver.wait(timeout=30)
    finally:
        if driver.poll() is None:  # pragma: no cover - cleanup on failure only
            driver.kill()
            driver.wait(timeout=30)

    executions_before = {cell: _sweep_cells.executions(str(par_dir), cell)
                         for cell in ("c0", "c1", "c3")}
    assert executions_before == {"c0": 1, "c1": 1, "c3": 1}

    # Act 3 — resume.  Unblock the gated cell; the resume must skip every
    # journaled completed cell and finish only the interrupted one.
    block.unlink()
    resumed = run_sweep(par_specs, config=OrchestratorConfig(
        jobs=2, worker_modules=(CELLS,)),
        journal_dir=journal_dir, resume=True)
    assert resumed.ok
    by_id = {o.spec.cell_id: o for o in resumed.outcomes}
    assert {cell: by_id[cell].status for cell in ("c0", "c1", "c3")} == {
        "c0": "cached", "c1": "cached", "c3": "cached"}
    assert by_id["gated"].status == "done"
    # cell-execution counters: completed cells never ran again
    assert {cell: _sweep_cells.executions(str(par_dir), cell)
            for cell in ("c0", "c1", "c3")} == executions_before
    # the gated cell's journal counts every attempt across the whole story:
    # the killed one, the re-dispatch, and the resume
    assert by_id["gated"].total_attempts == 3

    # Byte-identical to the uninterrupted serial run.
    assert _dumps(resumed) == _dumps(serial)


def test_flaky_cells_within_and_beyond_the_retry_budget(tmp_path, fast_policy):
    specs = [
        CellSpec("ok", f"{CELLS}:counting_cell", {"x": 5, "dir": str(tmp_path)}),
        CellSpec("flaky-recovers", f"{CELLS}:flaky_cell",
                 {"x": 6, "dir": str(tmp_path), "fail_times": 1}),
        CellSpec("flaky-hopeless", f"{CELLS}:flaky_cell",
                 {"x": 7, "dir": str(tmp_path), "fail_times": 99}),
    ]
    result = run_sweep(specs, config=OrchestratorConfig(
        jobs=2, worker_modules=(CELLS,), retry=fast_policy(attempts=3)),
        journal_dir=tmp_path / "journal")
    by_id = {o.spec.cell_id: o for o in result.outcomes}
    assert by_id["ok"].status == "done" and by_id["ok"].attempts == 1
    # succeeded inside the budget: one failure + one success
    assert by_id["flaky-recovers"].status == "done"
    assert by_id["flaky-recovers"].attempts == 2
    # exhausted the budget: failed with a readable one-line report
    hopeless = by_id["flaky-hopeless"]
    assert hopeless.status == "failed" and hopeless.attempts == 3
    line = hopeless.describe()
    assert "flaky-hopeless" in line and "3 attempt" in line
    assert "flaky cell failing on try 3" in line
    # the flaky cell's own invocation counter agrees with the orchestrator's
    assert _sweep_cells.executions(str(tmp_path), "flaky-hopeless") == 3
    # completed cells are kept: a resume skips them and retries only the
    # failed one (which then fails again — its counter proves it re-ran)
    resumed = run_sweep(specs, config=OrchestratorConfig(
        jobs=0, retry=fast_policy(attempts=1)),
        journal_dir=tmp_path / "journal", resume=True)
    by_id = {o.spec.cell_id: o for o in resumed.outcomes}
    assert by_id["ok"].status == "cached"
    assert by_id["flaky-recovers"].status == "cached"
    assert by_id["flaky-hopeless"].status == "failed"
    assert by_id["flaky-hopeless"].total_attempts == 4
