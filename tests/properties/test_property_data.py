"""Property-based tests of the data substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.momentum import MomentumWeightScheduler
from repro.data import (
    DomainSpec,
    SyntheticCorpusConfig,
    SyntheticNewsGenerator,
    Vocabulary,
    stratified_split,
)

token_lists = st.lists(st.text(alphabet="abcdefg", min_size=1, max_size=4),
                       min_size=0, max_size=40)


class TestVocabularyProperties:
    @given(token_lists)
    @settings(max_examples=50, deadline=None)
    def test_encode_decode_roundtrip_for_known_tokens(self, tokens):
        vocab = Vocabulary(tokens)
        known = [t for t in tokens if t in vocab]
        assert vocab.decode(vocab.encode(known)) == known

    @given(token_lists, st.integers(2, 10))
    @settings(max_examples=50, deadline=None)
    def test_encode_respects_max_length_and_padding(self, tokens, max_length):
        vocab = Vocabulary(tokens)
        ids = vocab.encode(tokens, max_length=max_length, pad=True)
        assert len(ids) == max_length
        assert all(0 <= i < len(vocab) for i in ids)

    @given(token_lists)
    @settings(max_examples=50, deadline=None)
    def test_ids_unique_per_token(self, tokens):
        vocab = Vocabulary(tokens)
        ids = {vocab.token_to_id(t) for t in set(tokens)}
        unknown_present = any(t not in vocab for t in tokens)
        assert len(ids) >= len({t for t in tokens if t in vocab}) - (1 if unknown_present else 0)


domain_spec_lists = st.lists(
    st.tuples(st.sampled_from(["alpha", "beta", "gamma", "delta", "epsilon"]),
              st.integers(4, 40), st.integers(4, 40)),
    min_size=2, max_size=5, unique_by=lambda t: t[0])


class TestGeneratorProperties:
    @given(domain_spec_lists, st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_generated_counts_match_specs(self, spec_tuples, seed):
        specs = tuple(DomainSpec(name, fake, real) for name, fake, real in spec_tuples)
        config = SyntheticCorpusConfig(domain_specs=specs, scale=1.0, seed=seed)
        dataset = SyntheticNewsGenerator(config).generate()
        assert len(dataset) == sum(spec.total for spec in specs)
        for index, spec in enumerate(specs):
            domain_labels = dataset.labels[dataset.domains == index]
            assert (domain_labels == 1).sum() == spec.fake
            assert (domain_labels == 0).sum() == spec.real

    @given(domain_spec_lists, st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_split_partitions_dataset(self, spec_tuples, seed):
        specs = tuple(DomainSpec(name, fake, real) for name, fake, real in spec_tuples)
        dataset = SyntheticNewsGenerator(
            SyntheticCorpusConfig(domain_specs=specs, scale=1.0, seed=seed)).generate()
        splits = stratified_split(dataset, seed=seed)
        ids = sorted(item.item_id for split in (splits.train, splits.val, splits.test)
                     for item in split)
        assert ids == sorted(item.item_id for item in dataset)


class TestMomentumSchedulerProperties:
    @given(st.lists(st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 4.0)),
                    min_size=1, max_size=20),
           st.floats(0.0, 0.99), st.floats(0.05, 0.45))
    @settings(max_examples=50, deadline=None)
    def test_weights_remain_valid_for_any_observation_sequence(self, observations,
                                                               momentum, minimum):
        scheduler = MomentumWeightScheduler(momentum=momentum, minimum_weight=minimum)
        for epoch, (f1, bias) in enumerate(observations):
            add, dkd = scheduler.update(epoch, f1=f1, total_bias=bias)
            assert minimum - 1e-9 <= add <= 1.0 - minimum + 1e-9
            assert abs(add + dkd - 1.0) < 1e-9
