"""Property-based tests of the metric invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    accuracy,
    domain_bias_report,
    f1_score,
    macro_f1,
    total_equality_difference,
)

label_arrays = st.integers(10, 80).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
        st.lists(st.integers(0, 1), min_size=n, max_size=n),
        st.lists(st.integers(0, 3), min_size=n, max_size=n),
    ))


class TestMetricInvariants:
    @given(label_arrays)
    @settings(max_examples=50, deadline=None)
    def test_metrics_bounded(self, data):
        y_true, y_pred, domains = map(np.array, data)
        assert 0.0 <= accuracy(y_true, y_pred) <= 1.0
        assert 0.0 <= f1_score(y_true, y_pred) <= 1.0
        assert 0.0 <= macro_f1(y_true, y_pred) <= 1.0

    @given(label_arrays)
    @settings(max_examples=50, deadline=None)
    def test_perfect_prediction_is_optimal(self, data):
        y_true, _, domains = map(np.array, data)
        assert accuracy(y_true, y_true) == 1.0
        assert macro_f1(y_true, y_true) >= macro_f1(y_true, 1 - y_true)
        assert total_equality_difference(y_true, y_true, domains, 4) == 0.0

    @given(label_arrays)
    @settings(max_examples=50, deadline=None)
    def test_equality_difference_nonnegative_and_bounded(self, data):
        y_true, y_pred, domains = map(np.array, data)
        report = domain_bias_report(y_true, y_pred, domains, [str(i) for i in range(4)])
        assert report.fned >= 0.0 and report.fped >= 0.0
        # Each domain contributes at most 1 to each equality difference.
        assert report.fned <= 4.0 and report.fped <= 4.0
        assert report.total == report.fned + report.fped

    @given(label_arrays)
    @settings(max_examples=50, deadline=None)
    def test_per_domain_rates_bounded(self, data):
        y_true, y_pred, domains = map(np.array, data)
        report = domain_bias_report(y_true, y_pred, domains, [str(i) for i in range(4)])
        for value in list(report.fnr_per_domain.values()) + list(report.fpr_per_domain.values()):
            assert 0.0 <= value <= 1.0

    @given(label_arrays)
    @settings(max_examples=30, deadline=None)
    def test_label_swap_symmetry_of_macro_f1(self, data):
        y_true, y_pred, _ = map(np.array, data)
        assert macro_f1(y_true, y_pred) == macro_f1(1 - y_true, 1 - y_pred)
