"""Property-based tests of the autograd engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import Tensor, functional as F

SMALL_FLOATS = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False,
                         allow_infinity=False, width=64)


def matrices(max_rows=6, max_cols=6):
    return st.tuples(st.integers(2, max_rows), st.integers(2, max_cols)).flatmap(
        lambda shape: arrays(np.float64, shape, elements=SMALL_FLOATS))


class TestAlgebraicProperties:
    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_addition_commutative(self, x):
        other = np.ones_like(x) * 0.5
        a = (Tensor(x) + Tensor(other)).numpy()
        b = (Tensor(other) + Tensor(x)).numpy()
        np.testing.assert_allclose(a, b)

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_double_negation_identity(self, x):
        np.testing.assert_allclose((-(-Tensor(x))).numpy(), x)

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_sum_matches_numpy(self, x):
        assert Tensor(x).sum().item() == np.testing.assert_allclose(
            Tensor(x).sum().item(), x.sum(), rtol=1e-10) or True

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_relu_idempotent_and_nonnegative(self, x):
        once = Tensor(x).relu()
        twice = once.relu()
        np.testing.assert_allclose(once.numpy(), twice.numpy())
        assert (once.numpy() >= 0).all()

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_reshape_roundtrip(self, x):
        t = Tensor(x)
        roundtrip = t.reshape(x.size).reshape(*x.shape)
        np.testing.assert_allclose(roundtrip.numpy(), x)


class TestGradientProperties:
    @given(matrices())
    @settings(max_examples=25, deadline=None)
    def test_sum_gradient_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    @given(matrices())
    @settings(max_examples=25, deadline=None)
    def test_linear_gradient_is_coefficient(self, x):
        t = Tensor(x, requires_grad=True)
        (3.5 * t).sum().backward()
        np.testing.assert_allclose(t.grad, 3.5)

    @given(matrices())
    @settings(max_examples=25, deadline=None)
    def test_gradient_shape_matches_input(self, x):
        t = Tensor(x, requires_grad=True)
        (t.tanh() * t.sigmoid()).sum().backward()
        assert t.grad.shape == x.shape
        assert np.isfinite(t.grad).all()


class TestFunctionalProperties:
    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_softmax_rows_are_distributions(self, x):
        probs = F.softmax(Tensor(x), axis=-1).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
        assert (probs >= 0).all() and (probs <= 1.0 + 1e-12).all()

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_kl_self_distillation_is_zero(self, x):
        t = Tensor(x)
        assert abs(F.distillation_kl(t, t.copy(), temperature=2.0).item()) < 1e-8

    @given(matrices(), st.floats(min_value=0.5, max_value=8.0))
    @settings(max_examples=30, deadline=None)
    def test_distillation_kl_nonnegative(self, x, temperature):
        rng = np.random.default_rng(0)
        teacher = Tensor(rng.standard_normal(x.shape))
        assert F.distillation_kl(Tensor(x), teacher, temperature=temperature).item() >= -1e-9

    @given(matrices())
    @settings(max_examples=30, deadline=None)
    def test_pairwise_distances_nonnegative_symmetric(self, x):
        m = F.pairwise_squared_distances(Tensor(x)).numpy()
        assert (m >= -1e-9).all()
        np.testing.assert_allclose(m, m.T, atol=1e-8)

    @given(arrays(np.float64, st.tuples(st.integers(2, 8), st.integers(2, 5)),
                  elements=SMALL_FLOATS))
    @settings(max_examples=30, deadline=None)
    def test_cross_entropy_nonnegative(self, logits):
        targets = np.zeros(logits.shape[0], dtype=np.int64)
        assert F.cross_entropy(Tensor(logits), targets).item() >= 0.0

    @given(matrices())
    @settings(max_examples=20, deadline=None)
    def test_normalize_produces_unit_vectors(self, x):
        normalised = F.normalize(Tensor(x + 0.1), axis=-1).numpy()
        norms = np.linalg.norm(normalised, axis=-1)
        np.testing.assert_allclose(norms[norms > 1e-6], 1.0, atol=1e-6)
