"""Encoder-backend registry: every backend must be bit-identical to local.

The contract the serving artifact relies on: ``local`` wraps the frozen
encoder without touching its math, ``cached`` memoises exact windows (hits
are bit-exact by construction), ``remote`` chunks and coalesces but scatters
back the same bytes, and every backend round-trips through its JSON spec via
``backend_from_spec``.  Reliability behaviour (retry of transient transport
faults, circuit-breaking a dead service) rides the same harness the serving
tier uses: the ``encoder.transport`` fault site.
"""

import numpy as np
import pytest

from repro.encoders import FrozenPretrainedEncoder
from repro.encoders.backends import (
    ENCODER_BACKENDS,
    CachedBackend,
    EncoderBackend,
    EncoderBackendError,
    EncoderTransport,
    InProcessTransport,
    LocalBackend,
    RemoteBackend,
    TransportError,
    as_backend,
    available_encoder_backends,
    backend_from_spec,
    register_encoder_backend,
    spec_fingerprint,
    wrap_encoder,
)
from repro.reliability import CircuitBreaker, CircuitOpen, FaultPlan, RetryPolicy, inject


@pytest.fixture(scope="module")
def encoder():
    return FrozenPretrainedEncoder(vocab_size=60, output_dim=12, seed=4)


@pytest.fixture(scope="module")
def window():
    rng = np.random.default_rng(9)
    token_ids = rng.integers(0, 60, size=(7, 10))
    token_ids[:, 7:] = 0  # padded tail
    mask = (token_ids != 0).astype(np.float64)
    return token_ids, mask


def _fast_retry(attempts=3):
    return RetryPolicy(attempts=attempts, base_delay_s=0.0, max_delay_s=0.0,
                       jitter=0.0)


class TestLocalBackend:
    def test_bit_identical_to_raw_encoder(self, encoder, window):
        token_ids, mask = window
        backend = LocalBackend(encoder)
        np.testing.assert_array_equal(backend.encode(token_ids, mask),
                                      encoder.encode(token_ids, mask))
        np.testing.assert_array_equal(backend.encode_pooled(token_ids, mask),
                                      encoder.encode_pooled(token_ids, mask))
        assert backend.vocab_size == encoder.vocab_size
        assert backend.output_dim == encoder.output_dim

    def test_spec_round_trip(self, encoder, window):
        token_ids, mask = window
        backend = LocalBackend(encoder)
        spec = backend.to_spec()
        assert spec["kind"] == "local"
        rebuilt = backend_from_spec(spec)
        assert isinstance(rebuilt, LocalBackend)
        assert rebuilt.fingerprint() == backend.fingerprint()
        np.testing.assert_array_equal(rebuilt.encode(token_ids, mask),
                                      backend.encode(token_ids, mask))

    def test_encoder_spec_is_legacy_manifest_spec(self, encoder):
        assert LocalBackend(encoder).encoder_spec() == encoder.to_spec()

    def test_state_reports_kind_and_fingerprint(self, encoder):
        backend = LocalBackend(encoder)
        state = backend.state()
        assert state["kind"] == "local"
        assert state["fingerprint"] == spec_fingerprint(backend.to_spec())

    def test_wrap_encoder_construction_path(self, encoder):
        assert isinstance(wrap_encoder("local", encoder), LocalBackend)

    def test_as_backend_normaliser(self, encoder):
        backend = LocalBackend(encoder)
        assert as_backend(backend) is backend
        assert isinstance(as_backend(encoder), LocalBackend)
        with pytest.raises(EncoderBackendError, match="EncoderBackend"):
            as_backend(object())


class TestCachedBackend:
    def test_hit_is_bit_identical_and_counted(self, encoder, window):
        token_ids, mask = window
        backend = CachedBackend.from_encoder(encoder)
        first = backend.encode(token_ids, mask)
        second = backend.encode(token_ids, mask)
        np.testing.assert_array_equal(first, encoder.encode(token_ids, mask))
        assert second is first  # exact-match hit returns the stored array
        stats = backend.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["entries"] == 1
        assert stats["resident_bytes"] == first.nbytes

    def test_cached_arrays_are_read_only(self, encoder, window):
        token_ids, mask = window
        backend = CachedBackend.from_encoder(encoder)
        states = backend.encode(token_ids, mask)
        with pytest.raises(ValueError):
            states[0, 0, 0] = 1.0

    def test_different_mask_is_a_different_window(self, encoder, window):
        token_ids, mask = window
        backend = CachedBackend.from_encoder(encoder)
        backend.encode(token_ids, mask)
        other_mask = mask.copy()
        other_mask[0, 0] = 0.0
        backend.encode(token_ids, other_mask)
        assert backend.stats()["misses"] == 2 and backend.stats()["hits"] == 0

    def test_lru_eviction_by_entries(self, encoder):
        backend = CachedBackend.from_encoder(encoder, max_entries=2)
        windows = [np.full((1, 4), i + 1) for i in range(3)]
        for ids in windows:
            backend.encode(ids)
        assert backend.stats()["evictions"] == 1
        backend.encode(windows[2])  # newest still resident
        backend.encode(windows[0])  # oldest was evicted -> miss, re-inserted
        stats = backend.stats()
        assert stats["hits"] == 1 and stats["misses"] == 4
        assert stats["evictions"] == 2
        assert stats["entries"] <= 2

    def test_eviction_by_bytes_keeps_one_over_budget_window(self, encoder, window):
        token_ids, mask = window
        backend = CachedBackend.from_encoder(encoder, max_bytes=1)
        states = backend.encode(token_ids, mask)
        assert states.nbytes > 1
        stats = backend.stats()
        # A single window larger than the budget must still be servable (and
        # cached) rather than thrashing on every request.
        assert stats["entries"] == 1
        assert backend.encode(token_ids, mask) is states
        backend.encode(token_ids[:2], mask[:2])  # second insert forces eviction
        assert backend.stats()["evictions"] >= 1

    def test_invalidate_drops_everything_and_cascades(self, encoder, window):
        token_ids, mask = window
        backend = CachedBackend(CachedBackend.from_encoder(encoder))
        backend.encode(token_ids, mask)
        backend.invalidate()
        stats = backend.stats()
        assert stats["entries"] == 0 and stats["resident_bytes"] == 0
        assert stats["invalidations"] == 1
        assert stats["inner_invalidations"] == 1  # cascaded to the inner cache
        backend.encode(token_ids, mask)
        assert backend.stats()["misses"] == 2  # the window really was dropped

    def test_spec_round_trip_preserves_bounds(self, encoder, window):
        token_ids, mask = window
        backend = CachedBackend.from_encoder(encoder, max_entries=7, max_bytes=12345)
        rebuilt = backend_from_spec(backend.to_spec())
        assert isinstance(rebuilt, CachedBackend)
        assert rebuilt.max_entries == 7 and rebuilt.max_bytes == 12345
        assert rebuilt.fingerprint() == backend.fingerprint()
        np.testing.assert_array_equal(rebuilt.encode(token_ids, mask),
                                      encoder.encode(token_ids, mask))

    def test_invalid_bounds_rejected(self, encoder):
        with pytest.raises(ValueError):
            CachedBackend.from_encoder(encoder, max_entries=0)
        with pytest.raises(ValueError):
            CachedBackend.from_encoder(encoder, max_bytes=0)


class TestRemoteBackend:
    def test_chunking_is_bit_identical(self, encoder, window):
        token_ids, mask = window
        backend = RemoteBackend.in_process(encoder, max_rows_per_request=2)
        np.testing.assert_array_equal(backend.encode(token_ids, mask),
                                      encoder.encode(token_ids, mask))
        stats = backend.stats()
        assert stats["requests"] == 4  # ceil(7 / 2) RPCs
        assert stats["rows_sent"] == 7

    def test_coalescing_sends_duplicates_once(self, encoder):
        rng = np.random.default_rng(3)
        base = rng.integers(1, 60, size=(3, 6))
        token_ids = base[[0, 1, 0, 2, 1, 0]]  # duplicates of every row
        backend = RemoteBackend.in_process(encoder)
        states = backend.encode(token_ids)
        np.testing.assert_array_equal(states, encoder.encode(token_ids))
        stats = backend.stats()
        assert stats["rows_sent"] == 3
        assert stats["rows_coalesced"] == 3
        np.testing.assert_array_equal(states[0], states[2])

    def test_coalescing_disabled_sends_every_row(self, encoder):
        token_ids = np.array([[1, 2], [1, 2], [1, 2]])
        backend = RemoteBackend.in_process(encoder, coalesce=False)
        np.testing.assert_array_equal(backend.encode(token_ids),
                                      encoder.encode(token_ids))
        assert backend.stats()["rows_sent"] == 3

    def test_transient_transport_fault_is_retried(self, encoder, window):
        token_ids, mask = window
        backend = RemoteBackend.in_process(encoder, retry=_fast_retry(attempts=3))
        plan = FaultPlan().fail("encoder.transport",
                                error=TransportError("wire dropped"), times=2)
        with inject(plan):
            states = backend.encode(token_ids, mask)
        np.testing.assert_array_equal(states, encoder.encode(token_ids, mask))
        assert plan.fired == 2
        assert backend.transport.requests == 3  # two drops + one success

    def test_persistently_dead_service_trips_the_breaker(self, encoder, window):
        token_ids, mask = window
        backend = RemoteBackend.in_process(
            encoder, retry=_fast_retry(attempts=2),
            breaker=CircuitBreaker(name="t", failure_threshold=2))
        plan = FaultPlan().fail("encoder.transport",
                                error=TransportError("service down"), times=None)
        with inject(plan):
            for _ in range(2):  # each exhausted retry round = one breaker failure
                with pytest.raises(TransportError):
                    backend.encode(token_ids, mask)
            with pytest.raises(CircuitOpen):
                backend.encode(token_ids, mask)
        assert backend.stats()["circuit"] == "open"

    def test_input_validation(self, encoder, window):
        token_ids, mask = window
        backend = RemoteBackend.in_process(encoder)
        with pytest.raises(ValueError, match="batch, seq"):
            backend.encode(token_ids[0])
        with pytest.raises(ValueError, match="mask shape"):
            backend.encode(token_ids, mask[:3])
        with pytest.raises(ValueError):
            RemoteBackend.in_process(encoder, max_rows_per_request=0)

    def test_spec_round_trip(self, encoder, window):
        token_ids, mask = window
        backend = RemoteBackend.in_process(encoder, max_rows_per_request=3,
                                           coalesce=False)
        rebuilt = backend_from_spec(backend.to_spec())
        assert isinstance(rebuilt, RemoteBackend)
        assert rebuilt.max_rows_per_request == 3 and rebuilt.coalesce is False
        assert rebuilt.fingerprint() == backend.fingerprint()
        np.testing.assert_array_equal(rebuilt.encode(token_ids, mask),
                                      encoder.encode(token_ids, mask))

    def test_opaque_transport_cannot_be_persisted(self):
        class SocketTransport(EncoderTransport):
            def request(self, token_ids, mask):  # pragma: no cover - never called
                raise TransportError("no service")

        backend = RemoteBackend(SocketTransport(), vocab_size=10, output_dim=4)
        with pytest.raises(EncoderBackendError, match="cannot be persisted"):
            backend.to_spec()

    def test_in_process_transport_describes_encoder(self, encoder):
        transport = InProcessTransport(encoder)
        assert transport.describe()["encoder"] == encoder.to_spec()


class TestRegistry:
    def test_stock_kinds_registered(self):
        assert set(available_encoder_backends()) >= {"local", "cached", "remote"}

    def test_unknown_kind_names_the_register_call(self):
        with pytest.raises(EncoderBackendError, match="register_encoder_backend"):
            backend_from_spec({"kind": "nonexistent_backend"})
        with pytest.raises(EncoderBackendError, match="unknown encoder backend"):
            wrap_encoder("nonexistent_backend", None)

    def test_malformed_spec_rejected(self):
        with pytest.raises(EncoderBackendError, match="kind"):
            backend_from_spec({"no": "kind"})
        with pytest.raises(EncoderBackendError, match="kind"):
            backend_from_spec("local")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_encoder_backend("local", LocalBackend)
        with pytest.raises(ValueError, match="non-empty"):
            register_encoder_backend("", LocalBackend)

    def test_custom_backend_round_trips(self, encoder, window):
        token_ids, mask = window

        class NegatingBackend(EncoderBackend):
            """A deliberately non-local transform, to prove the spec path."""

            kind = "unit_negating"

            def __init__(self, inner):
                self.inner = inner

            @property
            def vocab_size(self):
                return self.inner.vocab_size

            @property
            def output_dim(self):
                return self.inner.output_dim

            def encode(self, token_ids, mask=None):
                return -self.inner.encode(token_ids, mask)

            def to_spec(self):
                return {"kind": self.kind, "inner": self.inner.to_spec()}

            @classmethod
            def from_spec(cls, spec):
                return cls(backend_from_spec(spec["inner"]))

        register_encoder_backend("unit_negating", NegatingBackend)
        try:
            backend = NegatingBackend(LocalBackend(encoder))
            rebuilt = backend_from_spec(backend.to_spec())
            np.testing.assert_array_equal(rebuilt.encode(token_ids, mask),
                                          -encoder.encode(token_ids, mask))
            assert rebuilt.fingerprint() == backend.fingerprint()
        finally:
            ENCODER_BACKENDS.pop("unit_negating", None)

    def test_fingerprint_is_spec_content_hash(self, encoder):
        backend = LocalBackend(encoder)
        assert backend.fingerprint() == spec_fingerprint(backend.to_spec())
        other = LocalBackend(FrozenPretrainedEncoder(60, output_dim=12, seed=5))
        assert other.fingerprint() != backend.fingerprint()


class TestMaskValidation:
    """PR-8 bugfix: a mis-shaped mask must fail loudly, not broadcast."""

    def test_encoder_rejects_mismatched_mask(self, encoder):
        token_ids = np.array([[1, 2, 3, 0]])
        with pytest.raises(ValueError, match="mask shape"):
            encoder.encode(token_ids, np.ones((1, 3)))
        with pytest.raises(ValueError, match="mask shape"):
            encoder.encode(token_ids, np.ones((2, 4)))

    def test_matching_mask_still_accepted(self, encoder):
        token_ids = np.array([[1, 2, 3, 0]])
        mask = np.array([[1.0, 1.0, 1.0, 0.0]])
        assert encoder.encode(token_ids, mask).shape == (1, 4, 12)
