"""Frozen pre-trained encoder stand-in and handcrafted feature extractors."""

import numpy as np
import pytest

from repro.encoders import (
    EMOTION_FEATURE_DIM,
    STYLE_FEATURE_DIM,
    FrozenPretrainedEncoder,
    emotion_features,
    style_features,
)


class TestFrozenPretrainedEncoder:
    def test_output_shape(self):
        encoder = FrozenPretrainedEncoder(vocab_size=50, output_dim=12, seed=0)
        ids = np.array([[1, 2, 3, 0], [4, 5, 0, 0]])
        out = encoder.encode(ids)
        assert out.shape == (2, 4, 12)

    def test_padding_positions_are_zero(self):
        encoder = FrozenPretrainedEncoder(vocab_size=50, output_dim=8, seed=0)
        ids = np.array([[1, 2, 0, 0]])
        out = encoder.encode(ids)
        np.testing.assert_allclose(out[0, 2:], 0.0)

    def test_deterministic(self):
        a = FrozenPretrainedEncoder(30, output_dim=8, seed=5)
        b = FrozenPretrainedEncoder(30, output_dim=8, seed=5)
        ids = np.array([[3, 7, 9]])
        np.testing.assert_allclose(a.encode(ids), b.encode(ids))

    def test_different_tokens_get_different_vectors(self):
        encoder = FrozenPretrainedEncoder(30, output_dim=16, seed=0)
        out = encoder.encode(np.array([[1, 2]]))
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_out_of_vocabulary_id_rejected(self):
        encoder = FrozenPretrainedEncoder(10, output_dim=4, seed=0)
        with pytest.raises(ValueError):
            encoder.encode(np.array([[11]]))
        with pytest.raises(ValueError):
            encoder.encode(np.array([1, 2, 3]))  # wrong rank

    def test_pooled_encoding(self):
        encoder = FrozenPretrainedEncoder(30, output_dim=8, seed=0)
        ids = np.array([[1, 2, 0, 0], [3, 0, 0, 0]])
        pooled = encoder.encode_pooled(ids)
        assert pooled.shape == (2, 8)
        assert np.isfinite(pooled).all()

    def test_context_window_mixes_neighbours(self):
        plain = FrozenPretrainedEncoder(30, output_dim=8, context_window=0, seed=0)
        contextual = FrozenPretrainedEncoder(30, output_dim=8, context_window=2, seed=0)
        ids = np.array([[1, 2, 3, 4]])
        assert not np.allclose(plain.encode(ids), contextual.encode(ids))

    def test_feature_extractor_adapters(self, tiny_splits, tiny_vocab):
        encoder = FrozenPretrainedEncoder(len(tiny_vocab), output_dim=8, seed=0)
        token_ids, mask = tiny_splits.val.encode(tiny_vocab, max_length=10)
        seq = encoder.as_feature_extractor()(tiny_splits.val.items, token_ids, mask)
        pooled = encoder.as_pooled_feature_extractor()(tiny_splits.val.items, token_ids, mask)
        assert seq.shape == (len(tiny_splits.val), 10, 8)
        assert pooled.shape == (len(tiny_splits.val), 8)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            FrozenPretrainedEncoder(1, output_dim=8)
        with pytest.raises(ValueError):
            FrozenPretrainedEncoder(10, output_dim=0)


class TestHandcraftedFeatures:
    def test_style_feature_dimensions(self):
        vec = style_features(["style_formal1", "common3", "alpha"])
        assert vec.shape == (STYLE_FEATURE_DIM,)
        assert np.isfinite(vec).all()

    def test_style_features_empty_input(self):
        vec = style_features([])
        assert vec.shape == (STYLE_FEATURE_DIM,)
        np.testing.assert_allclose(vec, 0.0)

    def test_emotion_feature_dimensions(self):
        vec = emotion_features(["emo_arousal1", "emo_neutral2", "x"])
        assert vec.shape == (EMOTION_FEATURE_DIM,)

    def test_emotion_dominance_sign(self):
        arousal = emotion_features(["emo_arousal1", "emo_arousal2"])
        neutral = emotion_features(["emo_neutral1", "emo_neutral2"])
        assert arousal[2] > 0 > neutral[2]

    def test_style_sensational_fraction(self):
        vec = style_features(["style_sensational1", "style_sensational2", "other", "other"])
        assert vec[3] == pytest.approx(0.5)


class TestBatchedFeatureParity:
    """Vectorised feature extraction must equal the scalar ground truth bitwise."""

    def test_batch_matches_scalar_bit_for_bit(self):
        from repro.encoders.features import emotion_features_batch, style_features_batch

        rng = np.random.default_rng(1)
        pool = ["style_sensational_x", "style_formal", "common", "common12",
                "emo_arousal", "emo_neutral_b", "dom3_topic17", "fake_sig_2",
                "wordy_longer_token", "a"]
        token_lists = [list(rng.choice(pool, int(rng.integers(0, 30))))
                       for _ in range(64)]
        token_lists += [[], ["emo_arousal"], ["emo_neutral_b"], ["common"] * 5]
        style_rows = style_features_batch(token_lists)
        emotion_rows = emotion_features_batch(token_lists)
        for row, tokens in enumerate(token_lists):
            np.testing.assert_array_equal(style_rows[row], style_features(tokens))
            np.testing.assert_array_equal(emotion_rows[row], emotion_features(tokens))

    def test_pathological_token_falls_back_to_scalar_path(self):
        """One huge unbroken token must not inflate the flat unicode array."""
        from repro.encoders.features import (
            MAX_VECTORISED_TOKEN_CHARS,
            emotion_features_batch,
            style_features_batch,
        )

        monster = "x" * (MAX_VECTORISED_TOKEN_CHARS * 4)
        token_lists = [["common1", monster], ["emo_arousal_a", "style_formal_b"], []]
        style_rows = style_features_batch(token_lists)
        emotion_rows = emotion_features_batch(token_lists)
        for row, tokens in enumerate(token_lists):
            np.testing.assert_array_equal(style_rows[row], style_features(tokens))
            np.testing.assert_array_equal(emotion_rows[row], emotion_features(tokens))

    def test_extractors_use_batch_path(self):
        from repro.data import NewsItem
        from repro.encoders import emotion_feature_extractor, style_feature_extractor

        items = [NewsItem(text="style_formal1 common3 emo_arousal2", label=0,
                          domain=0, domain_name="d"),
                 NewsItem(text="", label=0, domain=0, domain_name="d")]
        style = style_feature_extractor(items, None, None)
        emotion = emotion_feature_extractor(items, None, None)
        assert style.shape == (2, 6) and emotion.shape == (2, 5)
        np.testing.assert_array_equal(style[0],
                                      style_features(items[0].text.split()))
        np.testing.assert_array_equal(style[1], style_features([]))
        np.testing.assert_array_equal(emotion[0],
                                      emotion_features(items[0].text.split()))
