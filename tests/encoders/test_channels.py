"""Feature-channel registry: one abstraction from loader to serving request.

The stock channels must compute exactly what the legacy hard-wired
extractors computed (bit-for-bit, or the committed training tables would
shift), the registry must round-trip channel specs, and ``DataLoader`` must
accept channels — as instances or manifest spec dicts — interchangeably with
legacy ``feature_extractors``.
"""

import numpy as np
import pytest

from repro.data import DataLoader
from repro.encoders import (
    FEATURE_CHANNELS,
    EmotionChannel,
    FeatureChannel,
    FeatureChannelError,
    FrozenPretrainedEncoder,
    LocalBackend,
    PLMChannel,
    ServeRequest,
    StyleChannel,
    available_feature_channels,
    build_feature_channel,
    channels_from_specs,
    emotion_feature_extractor,
    register_feature_channel,
    stock_channels,
    style_feature_extractor,
)
from repro.encoders.channels import STOCK_CHANNELS


@pytest.fixture(scope="module")
def backend(tiny_vocab):
    return LocalBackend(FrozenPretrainedEncoder(len(tiny_vocab), output_dim=16,
                                                seed=3))


class TestStockChannels:
    def test_names_and_order(self, backend):
        channels = stock_channels(backend)
        assert [channel.name for channel in channels] == list(STOCK_CHANNELS)
        assert STOCK_CHANNELS == ("plm", "style", "emotion")

    def test_extract_matches_legacy_extractors_bitwise(self, backend, tiny_splits,
                                                       tiny_vocab):
        """The loader path must produce the pre-registry arrays exactly."""
        items = tiny_splits.val.items
        token_ids, mask = tiny_splits.val.encode(tiny_vocab, max_length=12)
        plm, style, emotion = stock_channels(backend)
        np.testing.assert_array_equal(
            plm.extract(items, token_ids, mask),
            backend.encode(token_ids, mask))
        np.testing.assert_array_equal(
            style.extract(items, token_ids, mask),
            style_feature_extractor(items, token_ids, mask))
        np.testing.assert_array_equal(
            emotion.extract(items, token_ids, mask),
            emotion_feature_extractor(items, token_ids, mask))

    def test_serve_matches_extract_for_token_channels(self, backend, tiny_splits,
                                                      tiny_vocab):
        """Raw-text serving recomputes the training-time values bit-for-bit."""
        items = tiny_splits.val.items[:5]
        texts = [item.text for item in items]
        token_ids, mask = tiny_splits.val.subset(range(5)).encode(
            tiny_vocab, max_length=12)
        request = ServeRequest(texts, token_ids, mask,
                               encode_plm=backend.encode)
        for channel in stock_channels(backend):
            np.testing.assert_array_equal(
                channel.serve(request),
                channel.extract(items, token_ids, mask))

    def test_serve_request_token_lists_shared_and_lazy(self):
        request = ServeRequest(["a b", "c"], np.zeros((2, 3), dtype=np.int64),
                               np.zeros((2, 3)))
        assert request._token_lists is None
        lists = request.token_lists
        assert lists == [["a", "b"], ["c"]]
        assert request.token_lists is lists  # computed once, shared

    def test_serve_request_without_plm_encoder_errors(self):
        request = ServeRequest(["a"], np.zeros((1, 2), dtype=np.int64),
                               np.zeros((1, 2)))
        with pytest.raises(FeatureChannelError, match="no plm encoder"):
            request.encode_plm(request.token_ids, request.mask)


class TestChannelRegistry:
    def test_stock_kinds_registered(self):
        assert set(available_feature_channels()) >= {"plm", "style", "emotion"}

    def test_spec_round_trip(self, backend):
        for channel in stock_channels(backend):
            rebuilt = build_feature_channel(channel.to_spec())
            assert type(rebuilt) is type(channel)
            assert rebuilt.fingerprint() == channel.fingerprint()

    def test_unknown_kind_names_the_register_call(self):
        with pytest.raises(FeatureChannelError, match="register_feature_channel"):
            build_feature_channel({"kind": "nonexistent_channel"})
        with pytest.raises(FeatureChannelError, match="kind"):
            build_feature_channel({"no": "kind"})

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_feature_channel("plm", PLMChannel)
        with pytest.raises(ValueError, match="non-empty"):
            register_feature_channel("", PLMChannel)
        with pytest.raises(TypeError, match="callable"):
            register_feature_channel("unit_not_callable", object())

    def test_plm_rebinds_to_the_shared_backend_instance(self, backend):
        """Same fingerprint -> the pipeline's live backend (one cache, one
        breaker), not a private reconstruction."""
        specs = [channel.to_spec() for channel in stock_channels(backend)]
        channels = channels_from_specs(specs, backend=backend)
        assert channels[0].backend is backend

    def test_plm_keeps_its_own_backend_on_fingerprint_mismatch(self, backend,
                                                               tiny_vocab):
        other = LocalBackend(FrozenPretrainedEncoder(len(tiny_vocab),
                                                     output_dim=16, seed=99))
        specs = [PLMChannel(other).to_spec()]
        channels = channels_from_specs(specs, backend=backend)
        assert channels[0].backend is not backend
        assert channels[0].backend.fingerprint() == other.fingerprint()

    def test_custom_channel_registration(self):
        class LengthChannel(FeatureChannel):
            kind = "unit_length"

            def extract(self, items, token_ids, mask):
                return np.array([[float(len(item.text))] for item in items])

            def serve(self, request):
                return np.array([[float(len(text))] for text in request.texts])

            def to_spec(self):
                return {"kind": self.kind}

            @classmethod
            def from_spec(cls, spec):
                return cls()

        register_feature_channel("unit_length", LengthChannel)
        try:
            channel = build_feature_channel({"kind": "unit_length"})
            assert isinstance(channel, LengthChannel)
            request = ServeRequest(["abc", "de"], np.zeros((2, 2), dtype=np.int64),
                                   np.zeros((2, 2)))
            np.testing.assert_array_equal(channel.serve(request),
                                          [[3.0], [2.0]])
        finally:
            FEATURE_CHANNELS.pop("unit_length", None)


class TestLoaderChannels:
    def test_channels_match_legacy_extractors_bitwise(self, tiny_splits, tiny_vocab,
                                                      feature_extractors, backend):
        legacy = DataLoader(tiny_splits.val, tiny_vocab, max_length=16,
                            batch_size=16, shuffle=False, seed=0,
                            feature_extractors=feature_extractors)
        channelled = DataLoader(tiny_splits.val, tiny_vocab, max_length=16,
                                batch_size=16, shuffle=False, seed=0,
                                channels=stock_channels(backend))
        assert set(channelled.features) == set(legacy.features)
        for name in legacy.features:
            np.testing.assert_array_equal(channelled.features[name],
                                          legacy.features[name])

    def test_spec_dict_entries_resolved_through_registry(self, tiny_splits,
                                                         tiny_vocab, backend):
        loader = DataLoader(tiny_splits.val, tiny_vocab, max_length=16,
                            batch_size=16, shuffle=False, seed=0,
                            channels=[PLMChannel(backend).to_spec(),
                                      {"kind": "style"}])
        assert set(loader.features) == {"plm", "style"}
        np.testing.assert_array_equal(
            loader.features["plm"],
            backend.encode(loader.token_ids, loader.mask))

    def test_duplicate_channel_and_extractor_name_rejected(self, tiny_splits,
                                                           tiny_vocab, backend):
        with pytest.raises(ValueError, match="both"):
            DataLoader(tiny_splits.val, tiny_vocab, max_length=16, batch_size=16,
                       shuffle=False, seed=0,
                       feature_extractors={"style": style_feature_extractor},
                       channels=[StyleChannel()])

    def test_invalid_channel_entry_rejected(self, tiny_splits, tiny_vocab):
        with pytest.raises(TypeError, match="FeatureChannel"):
            DataLoader(tiny_splits.val, tiny_vocab, max_length=16, batch_size=16,
                       shuffle=False, seed=0, channels=["style"])

    def test_emotion_channel_instance_usable_directly(self, tiny_splits, tiny_vocab):
        loader = DataLoader(tiny_splits.val, tiny_vocab, max_length=16,
                            batch_size=16, shuffle=False, seed=0,
                            channels=[EmotionChannel()])
        batch = next(iter(loader))
        assert batch.feature("emotion").shape[0] == batch.token_ids.shape[0]
