"""Shared fixtures: tiny corpora, loaders and model configs for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DataLoader,
    MultiDomainNewsDataset,
    NewsItem,
    make_weibo21_like,
    stratified_split,
)
from repro.encoders import (
    FrozenPretrainedEncoder,
    emotion_feature_extractor,
    style_feature_extractor,
)
from repro.models import ModelConfig


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_dataset() -> MultiDomainNewsDataset:
    """A small but fully populated Weibo21-like corpus (9 domains)."""
    return make_weibo21_like(scale=0.04, seed=7)


@pytest.fixture(scope="session")
def tiny_splits(tiny_dataset):
    return stratified_split(tiny_dataset, train_fraction=0.6, val_fraction=0.1, seed=0)


@pytest.fixture(scope="session")
def tiny_vocab(tiny_splits):
    return tiny_splits.train.build_vocabulary()


@pytest.fixture(scope="session")
def tiny_encoder(tiny_vocab):
    return FrozenPretrainedEncoder(len(tiny_vocab), output_dim=16, seed=3)


@pytest.fixture(scope="session")
def feature_extractors(tiny_encoder):
    return {
        "plm": tiny_encoder.as_feature_extractor(),
        "style": style_feature_extractor,
        "emotion": emotion_feature_extractor,
    }


def _loader(split, vocab, extractors, shuffle):
    return DataLoader(split, vocab, max_length=16, batch_size=16, shuffle=shuffle,
                      seed=0, feature_extractors=extractors)


@pytest.fixture(scope="session")
def train_loader(tiny_splits, tiny_vocab, feature_extractors):
    return _loader(tiny_splits.train, tiny_vocab, feature_extractors, shuffle=True)


@pytest.fixture(scope="session")
def val_loader(tiny_splits, tiny_vocab, feature_extractors):
    return _loader(tiny_splits.val, tiny_vocab, feature_extractors, shuffle=False)


@pytest.fixture(scope="session")
def test_loader(tiny_splits, tiny_vocab, feature_extractors):
    return _loader(tiny_splits.test, tiny_vocab, feature_extractors, shuffle=False)


@pytest.fixture(scope="session")
def sample_batch(train_loader):
    return next(iter(train_loader))


@pytest.fixture(scope="session")
def model_config(tiny_dataset) -> ModelConfig:
    """Small model configuration matching the tiny loaders (plm_dim=16)."""
    return ModelConfig(plm_dim=16, num_domains=tiny_dataset.num_domains,
                       cnn_channels=8, kernel_sizes=(1, 2, 3), rnn_hidden=8,
                       hidden_dim=16, mlp_hidden=(16,), num_experts=3,
                       expert_hidden=12, domain_embedding_dim=6, seed=5)


@pytest.fixture
def manual_dataset() -> MultiDomainNewsDataset:
    """A hand-written 2-domain dataset with known counts for metric tests."""
    items = []
    texts_a = ["alpha beta fake", "alpha beta real", "alpha gamma fake", "alpha delta real"]
    labels_a = [1, 0, 1, 0]
    texts_b = ["omega beta fake", "omega real item", "omega another real"]
    labels_b = [1, 0, 0]
    for i, (text, label) in enumerate(zip(texts_a, labels_a)):
        items.append(NewsItem(text=text, label=label, domain=0, domain_name="sports", item_id=i))
    for i, (text, label) in enumerate(zip(texts_b, labels_b)):
        items.append(NewsItem(text=text, label=label, domain=1, domain_name="tech",
                              item_id=10 + i))
    return MultiDomainNewsDataset(items, ["sports", "tech"], name="manual")
