"""Fault-tolerant serving tier: supervision, backpressure, deadlines, parity.

The headline (tier-1) test is the chaos smoke: two workers, one injected
kill mid-stream, and the contract that makes the pool trustworthy — zero
lost tickets, the death detected and the slot respawned, and every returned
prediction bit-identical to a single-process :class:`repro.serve.Predictor`
replaying the same batch compositions.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.reliability import FaultPlan
from repro.serve import (
    PipelineError,
    Server,
    ServerConfig,
    ServerOverloaded,
)

def _submit_all(server, texts, domains):
    return [server.submit_ticket(text, domain=domain)
            for text, domain in zip(texts, domains)]


def assert_bit_parity(server, tickets, reference_predictor):
    """Replay the server's recorded batch compositions through the reference
    predictor and require float-equality on every probability.

    Parity must be checked per *batch composition* (not per item): the fused
    batched GEMMs round identically only for identical batch shapes, which is
    exactly what the server's workers and this replay share.
    """
    by_ticket = {ticket.id: ticket for ticket in tickets}
    assert server.batch_records, "server was not configured with record_batches"
    checked = 0
    for record in server.batch_records:
        reference = reference_predictor.predict(record["texts"],
                                                domains=record["domains"])
        for ticket_id, expected in zip(record["tickets"], reference):
            ticket = by_ticket.get(ticket_id)
            if ticket is None:  # batch from another submission wave
                continue
            assert ticket.prediction.probabilities == expected.probabilities
            assert ticket.prediction.label == expected.label
            checked += 1
    assert checked == len(tickets)


class TestChaosSmoke:
    def test_injected_worker_kill_recovers_with_bit_parity(
            self, artifact, sample_requests, reference_predictor):
        """A worker dying mid-batch costs a respawn, never an answer.

        Worker 0 is killed (injected ``SystemExit`` at ``serve.worker.step``)
        on its second claimed batch.  The supervisor must detect the death,
        respawn the slot, re-dispatch everything the dead worker held, and
        every prediction must be bit-identical to the single-process path.
        """
        texts, domains = sample_requests
        plan = FaultPlan(seed=1).fail("serve.worker.step", error=SystemExit,
                                      after=1, times=1)
        config = ServerConfig(workers=2, max_batch=8, max_latency_ms=2.0,
                              record_batches=True, fault_plans={0: plan})
        with Server(artifact, config) as server:
            assert server.wait_ready(60.0)
            tickets = _submit_all(server, texts, domains)
            assert server.drain(60.0), "queue failed to drain after the kill"
            results = [ticket.result(timeout=5.0) for ticket in tickets]

            assert all(result.ok for result in results), \
                [result.error for result in results if not result.ok]
            snap = server.stats.snapshot()
            assert snap["submitted"] == len(texts)
            assert snap["served"] == len(texts)      # zero lost tickets
            assert snap["in_queue"] == 0
            assert snap["worker_deaths"] >= 1
            assert snap["worker_restarts"] >= 1
            assert snap["redispatched"] >= 1
            assert_bit_parity(server, tickets, reference_predictor)

    def test_sigkill_recovers(self, artifact, sample_requests):
        """SIGKILL — no Python cleanup at all — is survived the same way."""
        texts, domains = sample_requests
        config = ServerConfig(workers=2, max_batch=4, max_latency_ms=2.0)
        with Server(artifact, config) as server:
            assert server.wait_ready(60.0)
            tickets = _submit_all(server, texts[:24], domains[:24])
            os.kill(server.worker_pids()[0], signal.SIGKILL)
            tickets += _submit_all(server, texts[24:], domains[24:])
            assert server.drain(60.0)
            assert all(t.result(timeout=5.0).ok for t in tickets)
            snap = server.stats.snapshot()
            assert snap["served"] == len(texts)
            assert snap["worker_deaths"] >= 1
            assert snap["worker_restarts"] >= 1


class TestBackpressure:
    def test_high_water_mark_sheds_with_readable_error(self, artifact):
        """Past the high-water mark submissions fail fast, not queue forever."""
        plan = FaultPlan().stall("serve.worker.step", delay_s=0.2, times=None)
        config = ServerConfig(workers=1, max_batch=4, max_latency_ms=1.0,
                              queue_high_water=8, fault_plans={0: plan})
        with Server(artifact, config) as server:
            assert server.wait_ready(60.0)
            accepted = []
            with pytest.raises(ServerOverloaded, match="high-water"):
                for index in range(50):
                    accepted.append(server.submit_ticket(
                        f"breaking dom1_topic{index} fake_sig_1 news"))
            assert len(accepted) == 8
            assert server.stats.shed >= 1
            # The accepted tickets still resolve; nothing is lost to the shed.
            assert server.drain(60.0)
            assert all(t.result(timeout=5.0).ok for t in accepted)

    def test_deadline_expires_before_dispatch(self, artifact):
        """An expired ticket is shed by the dispatcher, never scored."""
        config = ServerConfig(workers=1, max_batch=32, max_latency_ms=500.0)
        with Server(artifact, config) as server:
            assert server.wait_ready(60.0)
            tickets = [server.submit_ticket(f"dom2_topic{i} news item",
                                            deadline_ms=20.0)
                       for i in range(3)]
            time.sleep(0.05)  # all deadlines pass while the batch is pending
            assert server.drain(30.0)
            for ticket in tickets:
                prediction = ticket.result(timeout=5.0)
                assert not prediction.ok
                assert "deadline expired" in prediction.error
            assert server.stats.expired == 3
            assert server.stats.served == 0

    def test_non_positive_deadline_rejected(self, artifact, running_server):
        with pytest.raises(ValueError, match="deadline_ms"):
            running_server.submit_ticket("some news text", deadline_ms=0.0)


@pytest.fixture(scope="module")
def running_server(artifact):
    """A small healthy pool shared by the cheap API-surface tests."""
    config = ServerConfig(workers=1, max_batch=4, max_latency_ms=2.0)
    with Server(artifact, config) as server:
        assert server.wait_ready(60.0)
        yield server


class TestSubmissionValidation:
    def test_empty_text_rejected(self, running_server):
        with pytest.raises(ValueError, match="empty"):
            running_server.submit_ticket("   ")
        assert running_server.stats.rejected >= 1

    def test_unknown_domain_rejected(self, running_server):
        with pytest.raises(KeyError, match="unknown domain"):
            running_server.submit_ticket("some news", domain="astrology")

    def test_out_of_range_domain_index_rejected(self, running_server):
        with pytest.raises(KeyError, match="outside"):
            running_server.submit_ticket("some news", domain=10_000)

    def test_submit_after_stop_raises(self, artifact):
        server = Server(artifact, ServerConfig(workers=1)).start()
        server.stop()
        with pytest.raises(RuntimeError, match="stopped"):
            server.submit_ticket("some news")


class TestAsyncFrontend:
    def test_submit_and_submit_many(self, running_server, sample_requests,
                                    reference_predictor):
        texts, domains = sample_requests

        async def drive():
            single = await running_server.submit(texts[0], domain=domains[0])
            batch = await running_server.submit_many(texts[1:9], domains[1:9])
            return single, batch

        single, batch = asyncio.run(drive())
        assert single.ok and all(p.ok for p in batch)
        # Async answers carry real scores (queue latency included).
        assert single.label in (0, 1)
        assert single.latency_ms > 0

    def test_submit_many_isolates_bad_items(self, running_server):
        async def drive():
            return await running_server.submit_many(
                ["a fine news item", "   ", "another fine item"])

        good_a, bad, good_b = asyncio.run(drive())
        assert good_a.ok and good_b.ok
        assert not bad.ok and "empty" in bad.error


class TestSupervision:
    def test_health_reports_pool_and_ledger(self, running_server):
        report = running_server.health()
        assert report["status"] == "ok"
        assert report["model"] == "textcnn_s"
        assert len(report["workers"]) == 1
        assert report["workers"][0]["alive"] and report["workers"][0]["ready"]
        queue = report["queue"]
        for key in ("submitted", "served", "failed", "rejected", "shed",
                    "expired", "worker_deaths", "worker_restarts",
                    "redispatched"):
            assert key in queue

    def test_fatal_worker_startup_fails_server_readably(self, server_pipeline,
                                                        tmp_path):
        """A corrupt artifact is unrecoverable: fail fast, name the cause."""
        from repro.serve import save_pipeline

        path = str(tmp_path / "damaged")
        save_pipeline(server_pipeline, path)
        with open(os.path.join(path, "weights.npz"), "ab") as handle:
            handle.write(b"garbage")
        # Parent-side verification would catch this first; disable it so the
        # worker's own verify_pipeline is what trips.
        config = ServerConfig(workers=1, verify_artifact=False)
        server = Server(path, config).start()
        try:
            with pytest.raises(RuntimeError, match="cannot start"):
                server.wait_ready(30.0)
        finally:
            server.stop()

    def test_parent_side_verification_fails_fast(self, server_pipeline,
                                                 tmp_path):
        from repro.serve import save_pipeline

        path = str(tmp_path / "damaged2")
        save_pipeline(server_pipeline, path)
        os.remove(os.path.join(path, "vocab.json"))
        with pytest.raises(PipelineError):
            Server(path, ServerConfig(workers=1)).start()

    def test_stop_resolves_stranded_tickets(self, artifact):
        """Tickets the pool never scored still get a terminal answer."""
        plan = FaultPlan().stall("serve.worker.step", delay_s=3.0, times=None)
        config = ServerConfig(workers=1, max_batch=4, max_latency_ms=1.0,
                              fault_plans={0: plan})
        server = Server(artifact, config).start()
        assert server.wait_ready(60.0)
        tickets = [server.submit_ticket(f"dom1_topic{i} news") for i in range(8)]
        time.sleep(0.1)  # let the dispatcher hand batches to the stalled worker
        server.stop(timeout_s=1.0)
        for ticket in tickets:
            prediction = ticket.result(timeout=5.0)
            if not prediction.ok:
                assert "stopped" in prediction.error

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(workers=0)
        with pytest.raises(ValueError):
            ServerConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServerConfig(queue_high_water=0)
        with pytest.raises(ValueError):
            ServerConfig(start_method="threads")
