"""Fixtures for the fault-tolerant serving-tier suite.

The suite spawns real worker processes from a real on-disk artifact, so the
artifact is built once per module from the session-scoped tiny fixtures.
Every test runs under a wall-clock watchdog: a supervision bug that wedges
the pool must fail the test, not hang the run.
"""

from __future__ import annotations

import pytest

from repro.models import build_model
from repro.serve import Pipeline, load_pipeline, save_pipeline
from repro.utils import set_global_seed

# Per-test wall-clock limits come from the repository-root conftest's shared
# ``_suite_watchdog`` fixture (override with ``@pytest.mark.watchdog(s)``).


@pytest.fixture(scope="module")
def server_pipeline(tiny_vocab, tiny_encoder, model_config, tiny_dataset):
    """An untrained but fully wired pipeline (deterministic predictions)."""
    set_global_seed(0)
    model = build_model("textcnn_s", model_config)
    return Pipeline.from_training(model, tiny_vocab, tiny_encoder, max_length=16,
                                  domain_names=list(tiny_dataset.domain_names))


@pytest.fixture(scope="module")
def artifact(server_pipeline, tmp_path_factory):
    """One saved artifact shared by the module (workers only read it)."""
    path = str(tmp_path_factory.mktemp("serving") / "detector")
    save_pipeline(server_pipeline, path)
    return path


@pytest.fixture(scope="module")
def reference_predictor(artifact):
    """Single-process ground truth for bit-parity assertions."""
    return load_pipeline(artifact).predictor()


@pytest.fixture(scope="module")
def sample_requests(tiny_splits):
    """Real corpus texts plus their domains (48 of them)."""
    items = list(tiny_splits.test.items[:48])
    assert len(items) == 48
    return [item.text for item in items], [item.domain for item in items]
