"""The stdlib HTTP front-end: routes, status mapping, real sockets.

The frontend runs on a private event loop in a background thread and is
exercised with ``http.client`` over real TCP — the same path an external
client takes, including the one-request-per-connection framing.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.serve import HttpFrontend, Server, ServerConfig


@pytest.fixture(scope="module")
def http_stack(artifact):
    """A running Server + HttpFrontend; yields ``(server, port)``."""
    server = Server(artifact, ServerConfig(workers=1, max_batch=4,
                                           max_latency_ms=2.0)).start()
    assert server.wait_ready(60.0)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever,
                              name="http-test-loop", daemon=True)
    thread.start()
    frontend = HttpFrontend(server, port=0)
    port = asyncio.run_coroutine_threadsafe(frontend.start(), loop).result(10)
    yield server, port
    asyncio.run_coroutine_threadsafe(frontend.stop(), loop).result(10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(5)
    loop.close()
    server.stop()


def _request(port, method, path, body=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request(method, path,
                           body=json.dumps(body) if body is not None else None)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestRoutes:
    def test_predict_single(self, http_stack):
        _, port = http_stack
        status, payload = _request(port, "POST", "/predict",
                                   {"text": "breaking dom1_topic3 fake_sig_1"})
        assert status == 200
        assert payload["label_name"] in ("real", "fake")
        assert payload["error"] is None
        assert 0.0 <= payload["probability_fake"] <= 1.0

    def test_predict_batch_with_domains(self, http_stack):
        server, port = http_stack
        status, payload = _request(
            port, "POST", "/predict",
            {"texts": ["one fine item", "another dom2_topic5 item"],
             "domains": [0, "military"]})
        assert status == 200
        predictions = payload["predictions"]
        assert len(predictions) == 2
        assert all(p["error"] is None for p in predictions)
        assert predictions[1]["domain"] == "military"

    def test_predict_batch_isolates_bad_items(self, http_stack):
        _, port = http_stack
        status, payload = _request(port, "POST", "/predict",
                                   {"texts": ["fine", "   "]})
        assert status == 200
        good, bad = payload["predictions"]
        assert good["error"] is None
        assert "empty" in bad["error"]

    def test_health(self, http_stack):
        server, port = http_stack
        status, payload = _request(port, "GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["model"] == "textcnn_s"
        assert len(payload["workers"]) == 1

    def test_stats_ledger_grows(self, http_stack):
        _, port = http_stack
        _request(port, "POST", "/predict", {"text": "ledger item"})
        status, payload = _request(port, "GET", "/stats")
        assert status == 200
        assert payload["served"] >= 1
        assert payload["in_queue"] == 0


class TestStatusMapping:
    def test_invalid_text_is_400(self, http_stack):
        _, port = http_stack
        status, payload = _request(port, "POST", "/predict", {"text": "   "})
        assert status == 400
        assert "empty" in payload["error"]

    def test_unknown_domain_is_400(self, http_stack):
        _, port = http_stack
        status, payload = _request(port, "POST", "/predict",
                                   {"text": "fine", "domain": "astrology"})
        assert status == 400
        assert "unknown domain" in payload["error"]

    def test_malformed_json_is_400(self, http_stack):
        _, port = http_stack
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.request("POST", "/predict", body="{not json")
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert "JSON" in payload["error"]

    def test_missing_text_key_is_400(self, http_stack):
        _, port = http_stack
        status, payload = _request(port, "POST", "/predict", {"wrong": 1})
        assert status == 400
        assert "'text' or 'texts'" in payload["error"]

    def test_unknown_route_is_404(self, http_stack):
        _, port = http_stack
        status, payload = _request(port, "GET", "/nope")
        assert status == 404
        assert "/predict" in payload["error"]

    def test_wrong_method_is_405(self, http_stack):
        _, port = http_stack
        status, _ = _request(port, "GET", "/predict")
        assert status == 405
        status, _ = _request(port, "POST", "/health")
        assert status == 405
