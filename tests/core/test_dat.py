"""Domain adversarial training (DAT) and the DAT-IE variant."""

import numpy as np
import pytest

from repro.core import DATConfig, DomainAdversarialModel, train_dat_student, train_unbiased_teacher
from repro.core.trainer import evaluate_model
from repro.models import build_model
from repro.tensor import functional as F


class TestDATConfig:
    def test_beta_is_fraction_of_alpha(self):
        config = DATConfig(alpha=2.0, beta_ratio=0.2)
        assert config.beta == pytest.approx(0.4)

    def test_defaults_use_information_entropy(self):
        assert DATConfig().use_information_entropy


class TestDomainAdversarialModel:
    def test_wrapper_delegates_prediction(self, model_config, sample_batch):
        backbone = build_model("textcnn_s", model_config)
        wrapper = DomainAdversarialModel(backbone, model_config.num_domains)
        assert wrapper.feature_dim == backbone.feature_dim
        np.testing.assert_allclose(wrapper.predict_proba(sample_batch),
                                   backbone.predict_proba(sample_batch))
        assert wrapper.name.endswith("+dat")

    def test_domain_probabilities_are_distributions(self, model_config, sample_batch):
        backbone = build_model("textcnn_s", model_config)
        wrapper = DomainAdversarialModel(backbone, model_config.num_domains)
        probs = wrapper.domain_probabilities(wrapper.extract_features(sample_batch))
        np.testing.assert_allclose(probs.numpy().sum(axis=1), 1.0, atol=1e-9)

    def test_dat_ie_loss_contains_three_terms(self, model_config, sample_batch):
        backbone = build_model("textcnn_s", model_config)
        with_ie = DomainAdversarialModel(backbone, model_config.num_domains,
                                         config=DATConfig(alpha=1.0, use_information_entropy=True))
        without_ie = DomainAdversarialModel(backbone, model_config.num_domains,
                                            config=DATConfig(alpha=1.0,
                                                             use_information_entropy=False))
        backbone.eval()  # make dropout deterministic so the comparison is exact
        loss_ie, _ = with_ie.compute_loss(sample_batch)
        loss_plain, _ = without_ie.compute_loss(sample_batch)
        # The information-entropy term is negative (its minimum favours uniform
        # domain predictions), so the DAT-IE loss must differ from plain DAT.
        assert loss_ie.item() != pytest.approx(loss_plain.item())

    def test_backward_reaches_backbone_and_domain_head(self, model_config, sample_batch):
        backbone = build_model("textcnn_s", model_config)
        wrapper = DomainAdversarialModel(backbone, model_config.num_domains)
        loss, _ = wrapper.compute_loss(sample_batch)
        loss.backward()
        assert any(p.grad is not None for p in backbone.parameters())
        assert any(p.grad is not None for p in wrapper.domain_classifier.parameters())


class TestTraining:
    def test_train_unbiased_teacher_returns_backbone_in_eval(self, model_config,
                                                             train_loader, val_loader):
        backbone = build_model("textcnn_s", model_config)
        teacher, history = train_unbiased_teacher(
            backbone, train_loader, val_loader,
            config=DATConfig(epochs=2, learning_rate=2e-3))
        assert teacher is backbone
        assert not teacher.training
        assert len(history) == 2
        assert history.records[-1].val_f1 is not None

    def test_train_dat_student_variants(self, model_config, train_loader, test_loader):
        for use_ie in (False, True):
            backbone = build_model("textcnn_s", model_config.with_overrides(seed=7 + use_ie))
            model, _ = train_dat_student(backbone, train_loader, None,
                                         use_information_entropy=use_ie, epochs=2)
            report = evaluate_model(model, test_loader)
            assert 0.0 <= report.overall_f1 <= 1.0

    def test_adversarial_training_learns_label_signal(self, model_config,
                                                      train_loader, test_loader):
        backbone = build_model("textcnn_s", model_config)
        before = evaluate_model(backbone, test_loader).overall_f1
        train_unbiased_teacher(backbone, train_loader, None,
                               config=DATConfig(epochs=3, learning_rate=2e-3))
        after = evaluate_model(backbone, test_loader).overall_f1
        assert after > before
