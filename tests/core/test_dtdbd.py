"""The DTDBD trainer and the end-to-end Algorithm-1 pipeline."""

import numpy as np
import pytest

from repro.core import (
    DATConfig,
    DTDBDConfig,
    DTDBDTrainer,
    TrainerConfig,
    Trainer,
    evaluate_model,
    run_dtdbd_pipeline,
    train_unbiased_teacher,
)
from repro.data import DataLoader, make_weibo21_like, stratified_split
from repro.encoders import (
    FrozenPretrainedEncoder,
    emotion_feature_extractor,
    style_feature_extractor,
)
from repro.models import ModelConfig, build_model
from repro.tensor import default_dtype
from repro.utils import set_global_seed


@pytest.fixture(scope="module")
def teachers(model_config, train_loader):
    """A quickly-trained unbiased teacher and clean teacher shared by the tests."""
    unbiased = build_model("textcnn_s", model_config.with_overrides(seed=21))
    train_unbiased_teacher(unbiased, train_loader, None,
                           config=DATConfig(epochs=2, learning_rate=2e-3))
    clean = build_model("mdfend", model_config.with_overrides(seed=22))
    Trainer(clean, TrainerConfig(epochs=2, learning_rate=2e-3)).fit(train_loader)
    return unbiased, clean


class TestDTDBDTrainerConstruction:
    def test_requires_teachers_for_enabled_losses(self, model_config, teachers):
        unbiased, clean = teachers
        student = build_model("textcnn_s", model_config)
        with pytest.raises(ValueError):
            DTDBDTrainer(student, None, clean, DTDBDConfig(use_add=True))
        with pytest.raises(ValueError):
            DTDBDTrainer(student, unbiased, None, DTDBDConfig(use_dkd=True))

    def test_teachers_are_frozen(self, model_config, teachers):
        unbiased, clean = teachers
        student = build_model("textcnn_s", model_config)
        DTDBDTrainer(student, unbiased, clean, DTDBDConfig(epochs=1))
        assert unbiased.parameters() == []
        assert clean.parameters() == []

    def test_constant_scheduler_when_daa_disabled(self, model_config, teachers):
        unbiased, clean = teachers
        student = build_model("textcnn_s", model_config)
        trainer = DTDBDTrainer(student, unbiased, clean,
                               DTDBDConfig(epochs=1, use_dynamic_adjustment=False,
                                           initial_weight_add=0.4))
        assert trainer.scheduler.weights() == (0.4, 0.6)


class TestDTDBDTraining:
    def test_fit_records_history_and_weights(self, model_config, teachers,
                                             train_loader, val_loader):
        unbiased, clean = teachers
        student = build_model("textcnn_s", model_config.with_overrides(seed=31))
        trainer = DTDBDTrainer(student, unbiased, clean,
                               DTDBDConfig(epochs=2, learning_rate=2e-3))
        history = trainer.fit(train_loader, val_loader)
        assert len(history) == 2
        assert len(trainer.weight_history) == 3
        for add, dkd in trainer.weight_history:
            assert add + dkd == pytest.approx(1.0)
        assert all("weight_add" in record.extras for record in history)

    def test_student_learns_under_distillation(self, model_config, teachers,
                                                train_loader, test_loader):
        unbiased, clean = teachers
        student = build_model("textcnn_s", model_config.with_overrides(seed=32))
        before = evaluate_model(student, test_loader).overall_f1
        DTDBDTrainer(student, unbiased, clean,
                     DTDBDConfig(epochs=3, learning_rate=2e-3)).fit(train_loader)
        after = evaluate_model(student, test_loader).overall_f1
        assert after > before

    def test_teacher_weights_unchanged_by_distillation(self, model_config, teachers,
                                                       train_loader):
        unbiased, clean = teachers
        unbiased_before = unbiased.state_dict()
        clean_before = clean.state_dict()
        student = build_model("textcnn_s", model_config.with_overrides(seed=33))
        DTDBDTrainer(student, unbiased, clean,
                     DTDBDConfig(epochs=1, learning_rate=2e-3)).fit(train_loader)
        for key, value in unbiased.state_dict().items():
            np.testing.assert_allclose(value, unbiased_before[key])
        for key, value in clean.state_dict().items():
            np.testing.assert_allclose(value, clean_before[key])

    def test_ragged_batch_skips_add_and_surfaces_it(self, model_config, teachers,
                                                    train_loader):
        """A final batch of size 1 cannot form a correlation matrix: the ADD
        term is dropped from that batch's loss (CE + DKD remain), and the skip
        is surfaced in ``components`` so the epoch loss mixture stays
        interpretable."""
        unbiased, clean = teachers
        student = build_model("textcnn_s", model_config.with_overrides(seed=60))
        trainer = DTDBDTrainer(student, unbiased, clean,
                               DTDBDConfig(epochs=1, learning_rate=2e-3))
        singleton = train_loader.window(0, 1)
        loss, _, components = trainer._batch_loss(singleton)
        assert components["add"] == 0.0
        assert components["add_skipped"] is True
        assert "ce" in components and "dkd" in components
        assert loss.item() == pytest.approx(
            components["ce"] + trainer.scheduler.weight_dkd * components["dkd"])
        # A regular batch reports a real ADD term and no skip marker.
        full = train_loader.window(0, train_loader.batch_size)
        _, _, components = trainer._batch_loss(full)
        assert components["add"] > 0.0
        assert "add_skipped" not in components

    def test_invalidate_teacher_caches_releases_entries(self, model_config,
                                                        teachers, train_loader):
        unbiased, clean = teachers
        student = build_model("textcnn_s", model_config.with_overrides(seed=61))
        trainer = DTDBDTrainer(student, unbiased, clean,
                               DTDBDConfig(epochs=1, learning_rate=2e-3))
        trainer.train_epoch(train_loader)
        assert trainer._teacher_caches
        trainer.invalidate_teacher_caches()
        assert not trainer._teacher_caches
        # Training keeps working after invalidation (caches rebuild lazily).
        assert np.isfinite(trainer.train_epoch(train_loader))
        assert trainer._teacher_caches

    def test_ablation_modes_run(self, model_config, teachers, train_loader):
        unbiased, clean = teachers
        for kwargs in ({"use_add": False}, {"use_dkd": False},
                       {"use_dynamic_adjustment": False}):
            student = build_model("textcnn_s", model_config.with_overrides(seed=40))
            trainer = DTDBDTrainer(student,
                                   None if kwargs.get("use_add") is False else unbiased,
                                   None if kwargs.get("use_dkd") is False else clean,
                                   DTDBDConfig(epochs=1, learning_rate=2e-3, **kwargs))
            history = trainer.fit(train_loader)
            assert np.isfinite(history.train_losses[0])


class TestTeacherCacheEquivalence:
    """Cached and uncached DTDBD training are the *same* computation.

    The frozen-teacher output cache gathers precomputed arrays instead of
    re-running the teachers, and the trainer forwards ragged batches live, so
    the student's loss trajectory and the scheduler's weight history must be
    bit-identical under the same seed — in both dtypes.
    """

    @staticmethod
    def _run(cached: bool, dtype: str):
        with default_dtype(dtype):
            set_global_seed(123)
            dataset = make_weibo21_like(scale=0.04, seed=7)
            splits = stratified_split(dataset, train_fraction=0.6,
                                      val_fraction=0.1, seed=0)
            vocab = splits.train.build_vocabulary()
            encoder = FrozenPretrainedEncoder(len(vocab), output_dim=16, seed=3)
            extractors = {"plm": encoder.as_feature_extractor(),
                          "style": style_feature_extractor,
                          "emotion": emotion_feature_extractor}
            train_loader = DataLoader(splits.train, vocab, max_length=16,
                                      batch_size=16, shuffle=True, seed=0,
                                      feature_extractors=extractors)
            val_loader = DataLoader(splits.val, vocab, max_length=16,
                                    batch_size=16, shuffle=False, seed=0,
                                    feature_extractors=extractors)
            config = ModelConfig(plm_dim=16, num_domains=dataset.num_domains,
                                 cnn_channels=8, kernel_sizes=(1, 2, 3),
                                 rnn_hidden=8, hidden_dim=16, mlp_hidden=(16,),
                                 num_experts=3, expert_hidden=12,
                                 domain_embedding_dim=6, seed=5)
            student = build_model("textcnn_s", config.with_overrides(seed=31))
            unbiased = build_model("textcnn_s", config.with_overrides(seed=21))
            clean = build_model("mdfend", config.with_overrides(seed=22))
            trainer = DTDBDTrainer(
                student, unbiased, clean,
                DTDBDConfig(epochs=2, learning_rate=2e-3,
                            cache_teacher_outputs=cached))
            history = trainer.fit(train_loader, val_loader)
            return history.train_losses, trainer.weight_history

    @pytest.mark.parametrize("dtype", ("float64", "float32"))
    def test_identical_loss_trajectory_and_weight_history(self, dtype):
        cached_losses, cached_weights = self._run(cached=True, dtype=dtype)
        plain_losses, plain_weights = self._run(cached=False, dtype=dtype)
        assert cached_losses == plain_losses
        assert cached_weights == plain_weights


class TestPipeline:
    def test_run_dtdbd_pipeline_end_to_end(self, model_config, train_loader,
                                           val_loader, test_loader):
        student = build_model("textcnn_s", model_config.with_overrides(seed=50))
        unbiased_backbone = build_model("textcnn_s", model_config.with_overrides(seed=51))
        clean = build_model("mdfend", model_config.with_overrides(seed=52))
        result = run_dtdbd_pipeline(
            student, unbiased_backbone, clean,
            train_loader, val_loader, test_loader,
            dat_config=DATConfig(epochs=1, learning_rate=2e-3),
            clean_teacher_config=TrainerConfig(epochs=1, learning_rate=2e-3),
            dtdbd_config=DTDBDConfig(epochs=1, learning_rate=2e-3))
        assert result.test_report is not None
        assert result.student is student
        assert len(result.weight_history) >= 1
        assert 0.0 <= result.test_report.overall_f1 <= 1.0
