"""The DTDBD trainer and the end-to-end Algorithm-1 pipeline."""

import numpy as np
import pytest

from repro.core import (
    DATConfig,
    DTDBDConfig,
    DTDBDTrainer,
    TrainerConfig,
    Trainer,
    evaluate_model,
    run_dtdbd_pipeline,
    train_unbiased_teacher,
)
from repro.models import build_model


@pytest.fixture(scope="module")
def teachers(model_config, train_loader):
    """A quickly-trained unbiased teacher and clean teacher shared by the tests."""
    unbiased = build_model("textcnn_s", model_config.with_overrides(seed=21))
    train_unbiased_teacher(unbiased, train_loader, None,
                           config=DATConfig(epochs=2, learning_rate=2e-3))
    clean = build_model("mdfend", model_config.with_overrides(seed=22))
    Trainer(clean, TrainerConfig(epochs=2, learning_rate=2e-3)).fit(train_loader)
    return unbiased, clean


class TestDTDBDTrainerConstruction:
    def test_requires_teachers_for_enabled_losses(self, model_config, teachers):
        unbiased, clean = teachers
        student = build_model("textcnn_s", model_config)
        with pytest.raises(ValueError):
            DTDBDTrainer(student, None, clean, DTDBDConfig(use_add=True))
        with pytest.raises(ValueError):
            DTDBDTrainer(student, unbiased, None, DTDBDConfig(use_dkd=True))

    def test_teachers_are_frozen(self, model_config, teachers):
        unbiased, clean = teachers
        student = build_model("textcnn_s", model_config)
        DTDBDTrainer(student, unbiased, clean, DTDBDConfig(epochs=1))
        assert unbiased.parameters() == []
        assert clean.parameters() == []

    def test_constant_scheduler_when_daa_disabled(self, model_config, teachers):
        unbiased, clean = teachers
        student = build_model("textcnn_s", model_config)
        trainer = DTDBDTrainer(student, unbiased, clean,
                               DTDBDConfig(epochs=1, use_dynamic_adjustment=False,
                                           initial_weight_add=0.4))
        assert trainer.scheduler.weights() == (0.4, 0.6)


class TestDTDBDTraining:
    def test_fit_records_history_and_weights(self, model_config, teachers,
                                             train_loader, val_loader):
        unbiased, clean = teachers
        student = build_model("textcnn_s", model_config.with_overrides(seed=31))
        trainer = DTDBDTrainer(student, unbiased, clean,
                               DTDBDConfig(epochs=2, learning_rate=2e-3))
        history = trainer.fit(train_loader, val_loader)
        assert len(history) == 2
        assert len(trainer.weight_history) == 3
        for add, dkd in trainer.weight_history:
            assert add + dkd == pytest.approx(1.0)
        assert all("weight_add" in record.extras for record in history)

    def test_student_learns_under_distillation(self, model_config, teachers,
                                                train_loader, test_loader):
        unbiased, clean = teachers
        student = build_model("textcnn_s", model_config.with_overrides(seed=32))
        before = evaluate_model(student, test_loader).overall_f1
        DTDBDTrainer(student, unbiased, clean,
                     DTDBDConfig(epochs=3, learning_rate=2e-3)).fit(train_loader)
        after = evaluate_model(student, test_loader).overall_f1
        assert after > before

    def test_teacher_weights_unchanged_by_distillation(self, model_config, teachers,
                                                       train_loader):
        unbiased, clean = teachers
        unbiased_before = unbiased.state_dict()
        clean_before = clean.state_dict()
        student = build_model("textcnn_s", model_config.with_overrides(seed=33))
        DTDBDTrainer(student, unbiased, clean,
                     DTDBDConfig(epochs=1, learning_rate=2e-3)).fit(train_loader)
        for key, value in unbiased.state_dict().items():
            np.testing.assert_allclose(value, unbiased_before[key])
        for key, value in clean.state_dict().items():
            np.testing.assert_allclose(value, clean_before[key])

    def test_ablation_modes_run(self, model_config, teachers, train_loader):
        unbiased, clean = teachers
        for kwargs in ({"use_add": False}, {"use_dkd": False},
                       {"use_dynamic_adjustment": False}):
            student = build_model("textcnn_s", model_config.with_overrides(seed=40))
            trainer = DTDBDTrainer(student,
                                   None if kwargs.get("use_add") is False else unbiased,
                                   None if kwargs.get("use_dkd") is False else clean,
                                   DTDBDConfig(epochs=1, learning_rate=2e-3, **kwargs))
            history = trainer.fit(train_loader)
            assert np.isfinite(history.train_losses[0])


class TestPipeline:
    def test_run_dtdbd_pipeline_end_to_end(self, model_config, train_loader,
                                           val_loader, test_loader):
        student = build_model("textcnn_s", model_config.with_overrides(seed=50))
        unbiased_backbone = build_model("textcnn_s", model_config.with_overrides(seed=51))
        clean = build_model("mdfend", model_config.with_overrides(seed=52))
        result = run_dtdbd_pipeline(
            student, unbiased_backbone, clean,
            train_loader, val_loader, test_loader,
            dat_config=DATConfig(epochs=1, learning_rate=2e-3),
            clean_teacher_config=TrainerConfig(epochs=1, learning_rate=2e-3),
            dtdbd_config=DTDBDConfig(epochs=1, learning_rate=2e-3))
        assert result.test_report is not None
        assert result.student is student
        assert len(result.weight_history) >= 1
        assert 0.0 <= result.test_report.overall_f1 <= 1.0
