"""Generic trainer, evaluation helpers, history and early stopping."""

import numpy as np
import pytest

from repro.core import (
    EarlyStopping,
    EpochRecord,
    Trainer,
    TrainerConfig,
    TrainingHistory,
    collect_features,
    evaluate_model,
)
from repro.models import build_model


class TestTrainer:
    def test_loss_decreases_over_epochs(self, model_config, train_loader):
        model = build_model("textcnn_s", model_config)
        trainer = Trainer(model, TrainerConfig(epochs=3, learning_rate=2e-3))
        history = trainer.fit(train_loader)
        assert len(history) == 3
        assert history.train_losses[-1] < history.train_losses[0]

    def test_validation_metrics_recorded(self, model_config, train_loader, val_loader):
        model = build_model("bert", model_config)
        trainer = Trainer(model, TrainerConfig(epochs=2, learning_rate=2e-3))
        history = trainer.fit(train_loader, val_loader)
        assert all(record.val_f1 is not None for record in history)
        assert all(record.val_total_bias is not None for record in history)

    def test_training_improves_over_untrained(self, model_config, train_loader, test_loader):
        untrained = build_model("textcnn_s", model_config)
        report_before = evaluate_model(untrained, test_loader)
        trained = build_model("textcnn_s", model_config)
        Trainer(trained, TrainerConfig(epochs=3, learning_rate=2e-3)).fit(train_loader)
        report_after = evaluate_model(trained, test_loader)
        assert report_after.overall_f1 > report_before.overall_f1

    def test_early_stopping_limits_epochs(self, model_config, train_loader, val_loader):
        model = build_model("bert", model_config)
        trainer = Trainer(model, TrainerConfig(epochs=10, learning_rate=1e-5,
                                               early_stopping_patience=1))
        history = trainer.fit(train_loader, val_loader)
        assert len(history) < 10


class TestEvaluateModel:
    def test_report_structure(self, model_config, test_loader):
        model = build_model("textcnn_s", model_config)
        report = evaluate_model(model, test_loader, model_name="probe")
        assert report.model == "probe"
        assert set(report.per_domain_f1) == set(test_loader.dataset.domain_names)
        assert 0.0 <= report.overall_f1 <= 1.0

    def test_collect_features(self, model_config, test_loader):
        model = build_model("textcnn_s", model_config)
        features, labels, domains = collect_features(model, test_loader, max_items=20)
        assert features.shape == (20, model.feature_dim)
        assert labels.shape == (20,) and domains.shape == (20,)

    def test_collect_features_full(self, model_config, val_loader):
        model = build_model("bert", model_config)
        features, labels, _ = collect_features(model, val_loader)
        assert features.shape[0] == len(val_loader.dataset)


class TestHistory:
    def test_best_epoch(self):
        history = TrainingHistory()
        history.append(EpochRecord(epoch=0, train_loss=1.0, val_f1=0.5, val_total_bias=1.0))
        history.append(EpochRecord(epoch=1, train_loss=0.8, val_f1=0.7, val_total_bias=0.8))
        history.append(EpochRecord(epoch=2, train_loss=0.7, val_f1=0.6, val_total_bias=0.5))
        assert history.best_epoch("val_f1").epoch == 1
        assert history.best_epoch("val_total_bias", maximize=False).epoch == 2
        assert history.val_f1s == [0.5, 0.7, 0.6]

    def test_best_epoch_empty(self):
        assert TrainingHistory().best_epoch() is None


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2)
        assert not stopper.update(0.5)
        assert not stopper.update(0.49)
        assert stopper.update(0.48)

    def test_improvement_resets(self):
        stopper = EarlyStopping(patience=2)
        stopper.update(0.5)
        stopper.update(0.4)
        assert not stopper.update(0.6)
        assert stopper.stale_epochs == 0

    def test_minimize_mode(self):
        stopper = EarlyStopping(patience=1, maximize=False)
        stopper.update(1.0)
        assert not stopper.update(0.5)
        assert stopper.update(0.6)

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
