"""Domain-balanced loss reweighting baseline."""

import numpy as np
import pytest

from repro.core import TrainerConfig, evaluate_model
from repro.core.reweighting import DomainReweightedTrainer, domain_balanced_weights
from repro.models import build_model


class TestDomainBalancedWeights:
    def test_rare_cells_get_larger_weights(self):
        labels = np.array([1, 1, 1, 1, 0, 1, 0, 0])
        domains = np.array([0, 0, 0, 0, 0, 1, 1, 1])
        weights = domain_balanced_weights(labels, domains, num_domains=2, smoothing=0.0)
        # Domain 0 has 4 fake / 1 real: the single real sample outweighs each fake one.
        assert weights[4] > weights[0]
        assert weights.mean() == pytest.approx(1.0)

    def test_balanced_data_gives_uniform_weights(self):
        labels = np.array([0, 1, 0, 1])
        domains = np.array([0, 0, 1, 1])
        weights = domain_balanced_weights(labels, domains, num_domains=2, smoothing=0.0)
        np.testing.assert_allclose(weights, 1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            domain_balanced_weights(np.array([0, 1]), np.array([0]), num_domains=1)

    def test_smoothing_damps_extremes(self):
        labels = np.array([1] * 99 + [0])
        domains = np.zeros(100, dtype=int)
        raw = domain_balanced_weights(labels, domains, 1, smoothing=0.0)
        smoothed = domain_balanced_weights(labels, domains, 1, smoothing=5.0)
        assert smoothed.max() < raw.max()


class TestDomainReweightedTrainer:
    def test_training_runs_and_learns(self, model_config, train_loader, test_loader):
        model = build_model("textcnn_s", model_config)
        before = evaluate_model(model, test_loader).overall_f1
        trainer = DomainReweightedTrainer(model, train_loader,
                                          TrainerConfig(epochs=3, learning_rate=2e-3))
        history = trainer.fit(train_loader)
        after = evaluate_model(model, test_loader).overall_f1
        assert len(history) == 3
        assert after > before

    def test_loss_differs_from_unweighted(self, model_config, train_loader):
        model = build_model("bert", model_config)
        trainer = DomainReweightedTrainer(model, train_loader, TrainerConfig(epochs=1))
        batch = next(iter(train_loader))
        weighted = trainer._weighted_loss(batch).item()
        from repro.tensor import functional as F

        model.eval()
        unweighted = F.cross_entropy(model(batch), batch.labels).item()
        assert np.isfinite(weighted)
        assert weighted != pytest.approx(unweighted)
