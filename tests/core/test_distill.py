"""Adversarial de-biasing distillation and domain knowledge distillation losses."""

import numpy as np
import pytest

from repro.core import (
    TeacherCache,
    adversarial_debiasing_distillation_loss,
    correlation_matrix,
    domain_knowledge_distillation_loss,
    teacher_forward,
)
from repro.models import build_model
from repro.tensor import Tensor, fused_kernels


class TestCorrelationMatrix:
    def test_shape_and_symmetry(self):
        features = Tensor(np.random.default_rng(0).standard_normal((8, 5)))
        matrix = correlation_matrix(features).numpy()
        assert matrix.shape == (8, 8)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-10)
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-10)

    def test_normalisation_bounds_distances(self):
        features = Tensor(np.random.default_rng(0).standard_normal((6, 4)) * 100)
        matrix = correlation_matrix(features, normalize=True).numpy()
        assert matrix.max() <= 4.0 + 1e-9

    def test_unnormalised_keeps_scale(self):
        features = Tensor(np.random.default_rng(0).standard_normal((6, 4)) * 100)
        matrix = correlation_matrix(features, normalize=False).numpy()
        assert matrix.max() > 4.0


class TestADDLoss:
    def test_zero_when_student_equals_teacher(self):
        features = Tensor(np.random.default_rng(0).standard_normal((10, 6)))
        loss = adversarial_debiasing_distillation_loss(features, features.copy())
        assert loss.item() == pytest.approx(0.0, abs=1e-10)

    def test_positive_when_geometry_differs(self):
        rng = np.random.default_rng(0)
        student = Tensor(rng.standard_normal((10, 6)))
        teacher = Tensor(rng.standard_normal((10, 6)))
        assert adversarial_debiasing_distillation_loss(student, teacher).item() > 0

    def test_invariant_to_teacher_scale(self):
        rng = np.random.default_rng(1)
        student = Tensor(rng.standard_normal((8, 4)))
        teacher = Tensor(rng.standard_normal((8, 4)))
        loss_a = adversarial_debiasing_distillation_loss(student, teacher).item()
        loss_b = adversarial_debiasing_distillation_loss(student, teacher * 50.0).item()
        assert loss_a == pytest.approx(loss_b, rel=1e-6)

    def test_gradient_only_to_student(self):
        rng = np.random.default_rng(2)
        student = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        teacher = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        adversarial_debiasing_distillation_loss(student, teacher).backward()
        assert student.grad is not None
        assert teacher.grad is None

    def test_batch_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            adversarial_debiasing_distillation_loss(Tensor(np.zeros((4, 3))),
                                                    Tensor(np.zeros((5, 3))))

    def test_single_sample_rejected(self):
        with pytest.raises(ValueError):
            adversarial_debiasing_distillation_loss(Tensor(np.zeros((1, 3))),
                                                    Tensor(np.zeros((1, 3))))

    def test_fused_dispatch_matches_composed(self):
        """The single-node fused ADD kernel and the composed chain agree."""
        rng = np.random.default_rng(4)
        student_data = rng.standard_normal((10, 6))
        teacher = Tensor(rng.standard_normal((10, 6)))
        results = {}
        for fused_on in (True, False):
            with fused_kernels(fused_on):
                student = Tensor(student_data.copy(), requires_grad=True)
                loss = adversarial_debiasing_distillation_loss(
                    student, teacher, temperature=2.0)
                loss.backward()
                results[fused_on] = (loss.item(), student.grad)
        assert results[True][0] == pytest.approx(results[False][0], abs=1e-9)
        np.testing.assert_allclose(results[True][1], results[False][1], atol=1e-9)

    def test_minimising_loss_matches_teacher_geometry(self):
        """Gradient descent on ADD alone should pull the student's pairwise
        geometry towards the teacher's."""
        rng = np.random.default_rng(3)
        student = Tensor(rng.standard_normal((12, 4)), requires_grad=True)
        teacher = Tensor(rng.standard_normal((12, 4)))
        initial = adversarial_debiasing_distillation_loss(student, teacher).item()
        for _ in range(100):
            student.zero_grad()
            loss = adversarial_debiasing_distillation_loss(student, teacher)
            loss.backward()
            student.data = student.data - 1.0 * student.grad
        final = adversarial_debiasing_distillation_loss(student, teacher).item()
        assert final < initial * 0.5


class TestDKDLoss:
    def test_zero_for_identical_logits(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((7, 2)))
        assert domain_knowledge_distillation_loss(logits, logits.copy()).item() == pytest.approx(0.0, abs=1e-10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            domain_knowledge_distillation_loss(Tensor(np.zeros((3, 2))), Tensor(np.zeros((3, 3))))

    def test_temperature_softens(self):
        student = Tensor(np.array([[4.0, -4.0]]))
        teacher = Tensor(np.array([[-4.0, 4.0]]))
        hard = domain_knowledge_distillation_loss(student, teacher, temperature=1.0).item()
        # The tau^2 factor compensates the softening, so just check both finite
        soft = domain_knowledge_distillation_loss(student, teacher, temperature=10.0).item()
        assert np.isfinite(hard) and np.isfinite(soft)
        assert hard != pytest.approx(soft)


class TestTeacherForward:
    def test_returns_detached_constants(self, model_config, sample_batch):
        teacher = build_model("mdfend", model_config)
        logits, features = teacher_forward(teacher, sample_batch)
        assert not logits.requires_grad and not features.requires_grad
        assert logits.shape == (len(sample_batch), 2)

    def test_restores_training_mode(self, model_config, sample_batch):
        teacher = build_model("bert", model_config)
        teacher.train()
        teacher_forward(teacher, sample_batch)
        assert teacher.training

    def test_training_teacher_forwarded_in_eval_mode(self, model_config, sample_batch):
        """Ad-hoc callers with a train-mode teacher still get eval outputs."""
        teacher = build_model("mdfend", model_config)
        teacher.train()
        logits, _ = teacher_forward(teacher, sample_batch)
        teacher.eval()
        eval_logits, _ = teacher_forward(teacher, sample_batch)
        np.testing.assert_array_equal(logits.numpy(), eval_logits.numpy())

    def test_no_mode_flips_for_eval_teacher(self, model_config, sample_batch):
        """The frozen-and-eval steady state must not pay per-batch tree walks.

        Regression test for the old implementation, which called
        ``teacher.eval()`` (a full recursive module walk) on *every* batch
        even when the teacher had been in eval mode for the whole run.
        """
        teacher = build_model("mdfend", model_config)
        teacher.freeze()
        teacher.eval()
        calls = []
        original_train = type(teacher).train
        teacher.train = lambda mode=True: (calls.append(mode),
                                           original_train(teacher, mode))[1]
        logits, features = teacher_forward(teacher, sample_batch)
        assert calls == []
        assert not teacher.training
        assert not logits.requires_grad and not features.requires_grad


class TestTeacherCache:
    @pytest.fixture()
    def frozen_teacher(self, model_config):
        teacher = build_model("mdfend", model_config)
        teacher.freeze()
        teacher.eval()
        return teacher

    def test_refuses_unfrozen_teacher(self, model_config, train_loader):
        teacher = build_model("mdfend", model_config)
        with pytest.raises(ValueError, match="frozen"):
            TeacherCache(teacher, train_loader)

    def test_lookup_matches_live_forward(self, frozen_teacher, train_loader):
        """Gathers are bit-identical to per-batch forwards on served batches."""
        cache = TeacherCache(frozen_teacher, train_loader)
        assert not cache.materialised
        for batch in train_loader:
            logits, features = teacher_forward(frozen_teacher, batch)
            cached_logits, cached_features = cache.lookup(batch)
            if cache.serves(batch):
                np.testing.assert_array_equal(cached_logits.numpy(), logits.numpy())
                np.testing.assert_array_equal(cached_features.numpy(), features.numpy())
            else:
                # Ragged batches hit BLAS batch-shape rounding; values still
                # agree to far below any training-relevant tolerance.
                np.testing.assert_allclose(cached_logits.numpy(), logits.numpy(),
                                           rtol=1e-9, atol=1e-9)
        assert cache.materialised

    def test_lookup_matches_on_eval_batches(self, frozen_teacher, val_loader):
        cache = TeacherCache(frozen_teacher, val_loader)
        for batch in val_loader.iter_eval():
            if not cache.serves(batch):
                continue
            logits, features = teacher_forward(frozen_teacher, batch)
            cached_logits, cached_features = cache.lookup(batch)
            np.testing.assert_array_equal(cached_logits.numpy(), logits.numpy())
            np.testing.assert_array_equal(cached_features.numpy(), features.numpy())

    def test_serves_only_window_sized_batches(self, frozen_teacher, train_loader):
        cache = TeacherCache(frozen_teacher, train_loader)
        full = train_loader.window(0, train_loader.batch_size)
        ragged = train_loader.window(0, 3)
        assert cache.serves(full)
        assert not cache.serves(ragged)

    def test_lookup_returns_constants(self, frozen_teacher, train_loader):
        cache = TeacherCache(frozen_teacher, train_loader)
        logits, features = cache.lookup(next(iter(train_loader)))
        assert not logits.requires_grad and not features.requires_grad

    def test_invalidate_recomputes_after_teacher_change(self, model_config,
                                                        train_loader):
        teacher = build_model("mdfend", model_config)
        teacher.freeze()
        teacher.eval()
        cache = TeacherCache(teacher, train_loader)
        batch = next(train_loader.iter_eval())
        stale_logits, _ = cache.lookup(batch)
        # Mutate the (frozen) weights in place: without invalidation the cache
        # keeps serving the precomputed outputs.
        for _, parameter in teacher._all_parameters_even_frozen():
            parameter.data = parameter.data + 0.05
        still_stale, _ = cache.lookup(batch)
        np.testing.assert_array_equal(still_stale.numpy(), stale_logits.numpy())
        cache.invalidate()
        assert not cache.materialised
        fresh_logits, _ = cache.lookup(batch)
        live_logits, _ = teacher_forward(teacher, batch)
        np.testing.assert_array_equal(fresh_logits.numpy(), live_logits.numpy())
        assert np.abs(fresh_logits.numpy() - stale_logits.numpy()).max() > 0

    def test_rejects_foreign_indices(self, frozen_teacher, train_loader):
        cache = TeacherCache(frozen_teacher, train_loader)
        batch = train_loader.window(0, train_loader.batch_size)
        batch.indices = np.array([0, train_loader.num_samples + 5])
        with pytest.raises(IndexError, match="different loader"):
            cache.lookup(batch)
        # Negative indices must not wrap around to the end of the cache.
        batch.indices = np.array([0, -3])
        with pytest.raises(IndexError, match="different loader"):
            cache.lookup(batch)

    def _private_loader(self, tiny_splits, tiny_vocab, feature_extractors):
        """A loader this test may mutate without corrupting shared fixtures."""
        from repro.data import DataLoader

        return DataLoader(tiny_splits.train, tiny_vocab, max_length=16,
                          batch_size=16, shuffle=False, seed=0,
                          feature_extractors=feature_extractors)

    def test_partial_invalidate_recomputes_only_touched_windows(
            self, frozen_teacher, tiny_splits, tiny_vocab, feature_extractors):
        """Window-level invalidation: touched windows re-forward against the
        mutated rows, untouched windows keep serving their original arrays
        bit-identically (they are never rewritten)."""
        loader = self._private_loader(tiny_splits, tiny_vocab, feature_extractors)
        cache = TeacherCache(frozen_teacher, loader)
        window = cache.window_size
        first = loader.window(0, window)
        second = loader.window(window, 2 * window)
        cache.lookup(first)
        before_logits, before_features = cache.lookup(second)
        before_logits = before_logits.numpy().copy()
        before_features = before_features.numpy().copy()

        # Overwrite three rows of window 0 in place with another row's
        # encoding — the cached outputs for them are now stale.
        donor = window + 1
        for row in (0, 1, 2):
            loader.token_ids[row] = loader.token_ids[donor]
            loader.mask[row] = loader.mask[donor]
            for name in loader.features:
                loader.features[name][row] = loader.features[name][donor]
        cache.invalidate(np.array([0, 1, 2]))
        assert cache.materialised  # arrays kept, only windows marked stale

        fresh_logits, _ = cache.lookup(loader.window(0, window))
        assert cache.recomputed_windows == 1
        live_logits, _ = teacher_forward(frozen_teacher, loader.window(0, window))
        np.testing.assert_array_equal(fresh_logits.numpy(), live_logits.numpy())

        after_logits, after_features = cache.lookup(second)
        np.testing.assert_array_equal(after_logits.numpy(), before_logits)
        np.testing.assert_array_equal(after_features.numpy(), before_features)
        assert cache.recomputed_windows == 1  # window 1 was never re-forwarded

    def test_partial_invalidate_tail_rows_use_overlapping_window(
            self, frozen_teacher, tiny_splits, tiny_vocab, feature_extractors):
        loader = self._private_loader(tiny_splits, tiny_vocab, feature_extractors)
        cache = TeacherCache(frozen_teacher, loader)
        total = loader.num_samples
        window = cache.window_size
        assert total % window, "fixture corpus should have a ragged tail"
        cache.lookup(loader.window(0, window))
        # Without any data mutation the recompute must reproduce the same
        # outputs — the tail re-forward uses the same overlapping pass as
        # materialisation did.
        tail_batch = loader.window(total - window, total)
        before, _ = cache.lookup(tail_batch)
        before = before.numpy().copy()
        cache.invalidate([total - 1])
        after, _ = cache.lookup(tail_batch)
        assert cache.recomputed_windows == 1
        np.testing.assert_array_equal(after.numpy(), before)

    def test_partial_invalidate_edge_cases(self, frozen_teacher, tiny_splits,
                                           tiny_vocab, feature_extractors):
        loader = self._private_loader(tiny_splits, tiny_vocab, feature_extractors)
        cache = TeacherCache(frozen_teacher, loader)
        # Before materialisation a row-level invalidate is a no-op: the first
        # lookup computes everything fresh anyway.
        cache.invalidate([0, 1])
        assert not cache.materialised
        cache.lookup(loader.window(0, cache.window_size))
        assert cache.recomputed_windows == 0
        # Empty index sets are a no-op; out-of-range rows are rejected.
        cache.invalidate([])
        cache.invalidate(np.empty(0, dtype=np.int64))
        with pytest.raises(IndexError, match="outside the dataset"):
            cache.invalidate([loader.num_samples])
        with pytest.raises(IndexError, match="outside the dataset"):
            cache.invalidate([-1])
        # invalidate(None) keeps the legacy drop-everything contract.
        cache.invalidate(None)
        assert not cache.materialised
