"""Adversarial de-biasing distillation and domain knowledge distillation losses."""

import numpy as np
import pytest

from repro.core import (
    adversarial_debiasing_distillation_loss,
    correlation_matrix,
    domain_knowledge_distillation_loss,
    teacher_forward,
)
from repro.models import build_model
from repro.tensor import Tensor


class TestCorrelationMatrix:
    def test_shape_and_symmetry(self):
        features = Tensor(np.random.default_rng(0).standard_normal((8, 5)))
        matrix = correlation_matrix(features).numpy()
        assert matrix.shape == (8, 8)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-10)
        np.testing.assert_allclose(np.diag(matrix), 0.0, atol=1e-10)

    def test_normalisation_bounds_distances(self):
        features = Tensor(np.random.default_rng(0).standard_normal((6, 4)) * 100)
        matrix = correlation_matrix(features, normalize=True).numpy()
        assert matrix.max() <= 4.0 + 1e-9

    def test_unnormalised_keeps_scale(self):
        features = Tensor(np.random.default_rng(0).standard_normal((6, 4)) * 100)
        matrix = correlation_matrix(features, normalize=False).numpy()
        assert matrix.max() > 4.0


class TestADDLoss:
    def test_zero_when_student_equals_teacher(self):
        features = Tensor(np.random.default_rng(0).standard_normal((10, 6)))
        loss = adversarial_debiasing_distillation_loss(features, features.copy())
        assert loss.item() == pytest.approx(0.0, abs=1e-10)

    def test_positive_when_geometry_differs(self):
        rng = np.random.default_rng(0)
        student = Tensor(rng.standard_normal((10, 6)))
        teacher = Tensor(rng.standard_normal((10, 6)))
        assert adversarial_debiasing_distillation_loss(student, teacher).item() > 0

    def test_invariant_to_teacher_scale(self):
        rng = np.random.default_rng(1)
        student = Tensor(rng.standard_normal((8, 4)))
        teacher = Tensor(rng.standard_normal((8, 4)))
        loss_a = adversarial_debiasing_distillation_loss(student, teacher).item()
        loss_b = adversarial_debiasing_distillation_loss(student, teacher * 50.0).item()
        assert loss_a == pytest.approx(loss_b, rel=1e-6)

    def test_gradient_only_to_student(self):
        rng = np.random.default_rng(2)
        student = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        teacher = Tensor(rng.standard_normal((6, 4)), requires_grad=True)
        adversarial_debiasing_distillation_loss(student, teacher).backward()
        assert student.grad is not None
        assert teacher.grad is None

    def test_batch_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            adversarial_debiasing_distillation_loss(Tensor(np.zeros((4, 3))),
                                                    Tensor(np.zeros((5, 3))))

    def test_single_sample_rejected(self):
        with pytest.raises(ValueError):
            adversarial_debiasing_distillation_loss(Tensor(np.zeros((1, 3))),
                                                    Tensor(np.zeros((1, 3))))

    def test_minimising_loss_matches_teacher_geometry(self):
        """Gradient descent on ADD alone should pull the student's pairwise
        geometry towards the teacher's."""
        rng = np.random.default_rng(3)
        student = Tensor(rng.standard_normal((12, 4)), requires_grad=True)
        teacher = Tensor(rng.standard_normal((12, 4)))
        initial = adversarial_debiasing_distillation_loss(student, teacher).item()
        for _ in range(100):
            student.zero_grad()
            loss = adversarial_debiasing_distillation_loss(student, teacher)
            loss.backward()
            student.data = student.data - 1.0 * student.grad
        final = adversarial_debiasing_distillation_loss(student, teacher).item()
        assert final < initial * 0.5


class TestDKDLoss:
    def test_zero_for_identical_logits(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((7, 2)))
        assert domain_knowledge_distillation_loss(logits, logits.copy()).item() == pytest.approx(0.0, abs=1e-10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            domain_knowledge_distillation_loss(Tensor(np.zeros((3, 2))), Tensor(np.zeros((3, 3))))

    def test_temperature_softens(self):
        student = Tensor(np.array([[4.0, -4.0]]))
        teacher = Tensor(np.array([[-4.0, 4.0]]))
        hard = domain_knowledge_distillation_loss(student, teacher, temperature=1.0).item()
        # The tau^2 factor compensates the softening, so just check both finite
        soft = domain_knowledge_distillation_loss(student, teacher, temperature=10.0).item()
        assert np.isfinite(hard) and np.isfinite(soft)
        assert hard != pytest.approx(soft)


class TestTeacherForward:
    def test_returns_detached_constants(self, model_config, sample_batch):
        teacher = build_model("mdfend", model_config)
        logits, features = teacher_forward(teacher, sample_batch)
        assert not logits.requires_grad and not features.requires_grad
        assert logits.shape == (len(sample_batch), 2)

    def test_restores_training_mode(self, model_config, sample_batch):
        teacher = build_model("bert", model_config)
        teacher.train()
        teacher_forward(teacher, sample_batch)
        assert teacher.training
