"""Momentum-based dynamic adjustment algorithm (Eq. 13-15)."""

import pytest

from repro.core import ConstantWeightScheduler, MomentumWeightScheduler


class TestMomentumWeightScheduler:
    def test_initial_weights_sum_to_one(self):
        scheduler = MomentumWeightScheduler(initial_weight_add=0.6)
        add, dkd = scheduler.weights()
        assert add == pytest.approx(0.6)
        assert add + dkd == pytest.approx(1.0)

    def test_first_update_only_seeds_baselines(self):
        scheduler = MomentumWeightScheduler(initial_weight_add=0.5)
        add, _ = scheduler.update(0, f1=0.8, total_bias=1.0)
        assert add == pytest.approx(0.5)

    def test_bias_improvement_shifts_towards_clean_teacher(self):
        scheduler = MomentumWeightScheduler(momentum=0.5, initial_weight_add=0.5)
        scheduler.update(0, f1=0.8, total_bias=1.0)
        add_before = scheduler.weight_add
        # bias improved a lot, F1 unchanged -> (delta_bias - delta_f1) > 0 -> w_ADD drops
        add_after, _ = scheduler.update(1, f1=0.8, total_bias=0.4)
        assert add_after < add_before

    def test_f1_improvement_shifts_towards_unbiased_teacher(self):
        improving = MomentumWeightScheduler(momentum=0.5, initial_weight_add=0.5)
        stagnant = MomentumWeightScheduler(momentum=0.5, initial_weight_add=0.5)
        improving.update(0, f1=0.5, total_bias=1.0)
        stagnant.update(0, f1=0.5, total_bias=1.0)
        add_improving, _ = improving.update(1, f1=0.9, total_bias=1.0)
        add_stagnant, _ = stagnant.update(1, f1=0.5, total_bias=1.0)
        # F1 improved, bias unchanged -> (delta_bias - delta_f1) < 0, so the
        # unbiased teacher keeps more weight than under pure momentum decay.
        assert add_improving > add_stagnant

    def test_weights_always_sum_to_one_and_clamped(self):
        scheduler = MomentumWeightScheduler(momentum=0.0, initial_weight_add=0.5,
                                            minimum_weight=0.1)
        scheduler.update(0, f1=0.5, total_bias=1.0)
        for epoch in range(1, 10):
            add, dkd = scheduler.update(epoch, f1=0.5, total_bias=1.0 - 0.5 * epoch)
            assert add + dkd == pytest.approx(1.0)
            assert 0.1 <= add <= 0.9

    def test_history_snapshots(self):
        scheduler = MomentumWeightScheduler()
        scheduler.update(0, f1=0.5, total_bias=1.0)
        scheduler.update(1, f1=0.6, total_bias=0.9)
        assert len(scheduler.history) == 3
        last = scheduler.history[-1]
        assert last.delta_f1 == pytest.approx(0.1)
        assert last.delta_bias == pytest.approx(0.1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MomentumWeightScheduler(momentum=1.0)
        with pytest.raises(ValueError):
            MomentumWeightScheduler(minimum_weight=0.6)


class TestConstantWeightScheduler:
    def test_update_never_changes_weights(self):
        scheduler = ConstantWeightScheduler(weight_add_value=0.3)
        assert scheduler.weights() == (0.3, 0.7)
        scheduler.update(0, f1=0.1, total_bias=5.0)
        scheduler.update(1, f1=0.9, total_bias=0.1)
        assert scheduler.weights() == (0.3, 0.7)
