"""RetryPolicy: bounded, seeded, deadline-aware retries around fallible calls."""

from __future__ import annotations

import pytest

from repro.reliability import (
    DeadlineExceeded,
    FaultPlan,
    RetryPolicy,
    default_read_policy,
    inject,
)


def _flaky(failures: int, error=OSError):
    """A callable failing ``failures`` times before returning its call count."""
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] <= failures:
            raise error(f"transient #{calls['n']}")
        return calls["n"]

    fn.calls = calls
    return fn


def _no_sleep():
    slept = []
    return slept, slept.append


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        slept, sleep = _no_sleep()
        policy = RetryPolicy(attempts=3, base_delay_s=0.01, seed=0, sleep=sleep)
        assert policy.call(_flaky(2)) == 3
        assert len(slept) == 2

    def test_exhausted_attempts_reraise_last_error(self):
        slept, sleep = _no_sleep()
        policy = RetryPolicy(attempts=3, base_delay_s=0.0, seed=0, sleep=sleep)
        with pytest.raises(OSError, match="transient #3"):
            policy.call(_flaky(99))
        assert len(slept) == 2  # one delay per retry, none after the last

    def test_give_up_on_fails_immediately(self):
        policy = RetryPolicy(attempts=5, base_delay_s=0.0, seed=0,
                             give_up_on=(FileNotFoundError,), sleep=lambda _: None)
        fn = _flaky(99, error=FileNotFoundError)
        with pytest.raises(FileNotFoundError):
            policy.call(fn)
        assert fn.calls["n"] == 1

    def test_unlisted_errors_propagate_immediately(self):
        fn = _flaky(99, error=ValueError)
        with pytest.raises(ValueError):
            RetryPolicy(attempts=5, seed=0, sleep=lambda _: None).call(fn)
        assert fn.calls["n"] == 1

    def test_deadline_budget_raises_instead_of_sleeping(self):
        policy = RetryPolicy(attempts=5, base_delay_s=10.0, deadline_s=0.05,
                             seed=0, sleep=lambda _: pytest.fail("must not sleep"))
        with pytest.raises(DeadlineExceeded, match="transient #1"):
            policy.call(_flaky(99))

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(attempts=5, base_delay_s=0.1, multiplier=2.0,
                             max_delay_s=0.3, jitter=0.0, seed=0)
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_jitter_stream_is_seeded(self):
        make = lambda seed: RetryPolicy(attempts=6, base_delay_s=0.1, jitter=0.25,
                                        seed=seed)
        assert list(make(5).delays()) == list(make(5).delays())
        assert list(make(5).delays()) != list(make(6).delays())
        for delay in make(5).delays():
            assert 0.075 <= delay  # within the +/-25% band of the schedule

    def test_wrap_passes_arguments_through(self):
        policy = RetryPolicy(attempts=2, base_delay_s=0.0, seed=0,
                             sleep=lambda _: None)
        wrapped = policy.wrap(lambda a, b=0: a + b)
        assert wrapped(2, b=3) == 5

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)

    def test_default_read_policy_gives_up_on_missing_files(self):
        policy = default_read_policy()
        fn = _flaky(99, error=FileNotFoundError)
        with pytest.raises(FileNotFoundError):
            policy.call(fn)
        assert fn.calls["n"] == 1


class TestRetryIntegration:
    def test_checkpoint_read_survives_transient_faults(self, tmp_path, make_world):
        """Two injected transient read errors cost retries, not the load."""
        from repro.models import build_model
        from repro.nn import load_checkpoint, save_checkpoint

        world = make_world()
        model = build_model("textcnn_s", world.config)
        path = str(tmp_path / "model.npz")
        save_checkpoint(model, path)
        plan = FaultPlan().fail("io.read", times=2, error=OSError("flaky disk"))
        clone = build_model("textcnn_s", world.config)
        with inject(plan):
            load_checkpoint(clone, path)
        assert plan.fired == 2
        assert clone.state_dict().keys() == model.state_dict().keys()

    def test_predictor_encoder_calls_are_retried(self, artifact):
        """One transient encoder failure is absorbed by the predictor's policy."""
        from repro.serve import load_pipeline

        predictor = load_pipeline(artifact).predictor()
        plan = FaultPlan().fail("encoder.encode", times=1, error=OSError("backend blip"))
        with inject(plan):
            [prediction] = predictor.predict(["breaking dom1_topic3 fake_sig_1"])
        assert plan.fired == 1
        assert prediction.label in (0, 1)


class TestRetryEdgeCases:
    """Degenerate budgets, subclass precedence, and replay determinism."""

    def test_zero_deadline_fails_before_any_sleep(self):
        slept, sleep = _no_sleep()
        policy = RetryPolicy(attempts=5, base_delay_s=0.01, deadline_s=0.0,
                             seed=0, sleep=sleep)
        fn = _flaky(failures=10)
        with pytest.raises(DeadlineExceeded, match="deadline of 0.000s"):
            policy.call(fn)
        assert fn.calls["n"] == 1  # one attempt, zero retries
        assert slept == []

    def test_negative_deadline_behaves_like_zero(self):
        slept, sleep = _no_sleep()
        policy = RetryPolicy(attempts=3, base_delay_s=0.0, jitter=0.0,
                             deadline_s=-1.0, seed=0, sleep=sleep)
        with pytest.raises(DeadlineExceeded):
            policy.call(_flaky(failures=10))
        assert slept == []

    def test_single_attempt_policy_never_sleeps(self):
        slept, sleep = _no_sleep()
        policy = RetryPolicy(attempts=1, seed=0, sleep=sleep)
        with pytest.raises(OSError):
            policy.call(_flaky(failures=10))
        assert slept == []
        assert list(policy.delays()) == []

    def test_give_up_on_wins_over_retry_on_for_subclasses(self):
        """FileNotFoundError is an OSError; the give-up clause is checked
        first, so the subclass short-circuits even though its base retries."""
        policy = RetryPolicy(attempts=5, retry_on=(OSError,),
                             give_up_on=(FileNotFoundError,), seed=0,
                             sleep=lambda _: None)
        fn = _flaky(failures=10, error=FileNotFoundError)
        with pytest.raises(FileNotFoundError):
            policy.call(fn)
        assert fn.calls["n"] == 1

    def test_give_up_on_matches_subclasses_of_its_entries(self):
        class Fatal(RuntimeError):
            pass

        class MoreFatal(Fatal):
            pass

        policy = RetryPolicy(attempts=5, retry_on=(RuntimeError,),
                             give_up_on=(Fatal,), seed=0, sleep=lambda _: None)
        fn = _flaky(failures=10, error=MoreFatal)
        with pytest.raises(MoreFatal):
            policy.call(fn)
        assert fn.calls["n"] == 1
        # The base RuntimeError still retries as configured.
        assert policy.call(_flaky(failures=2, error=RuntimeError)) == 3

    def test_jitter_is_deterministic_across_plan_reset_replays(self, tmp_path):
        """Replaying the same fault plan with the same policy seed reproduces
        the exact backoff schedule — chaos runs are rerunnable bit-for-bit."""
        path = tmp_path / "flaky.txt"
        path.write_text("payload")

        def read():
            from repro.reliability.faults import fault_point
            fault_point("retry.replay")
            return path.read_text()

        plan = FaultPlan(seed=9).fail("retry.replay", times=3,
                                      error=OSError("blip"))
        schedules = []
        for _ in range(2):
            plan.reset()
            slept, sleep = _no_sleep()
            policy = RetryPolicy(attempts=5, base_delay_s=0.01, jitter=0.5,
                                 seed=21, sleep=sleep)
            with inject(plan):
                assert policy.call(read) == "payload"
            assert plan.fired == 3
            assert len(slept) == 3
            schedules.append(tuple(slept))
        assert schedules[0] == schedules[1]
        assert len(set(schedules[0])) == 3  # jitter actually varies per retry
