"""CLI error paths: one readable diagnostic line, non-zero exit, no traceback."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro import cli

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)))), "src")


def _flip_byte(path: str, offset: int = 200) -> None:
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    blob[offset % len(blob)] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))


def _one_diagnostic_line(captured: str) -> None:
    assert captured.startswith("predict: ")
    assert captured.count("\n") == 1
    assert "Traceback" not in captured


class TestPredictErrorPaths:
    def test_missing_artifact(self, tmp_path, capsys):
        code = cli.main(["predict", "--pipeline", str(tmp_path / "nowhere"),
                         "--text", "some news"])
        assert code == 2
        err = capsys.readouterr().err
        _one_diagnostic_line(err)
        assert "no pipeline artifact" in err

    def test_corrupt_artifact(self, artifact, capsys):
        _flip_byte(os.path.join(artifact, "weights.npz"))
        code = cli.main(["predict", "--pipeline", artifact, "--text", "some news"])
        assert code == 2
        err = capsys.readouterr().err
        _one_diagnostic_line(err)
        assert "checksum mismatch" in err

    def test_unreadable_input_file(self, artifact, tmp_path, capsys):
        code = cli.main(["predict", "--pipeline", artifact,
                         "--input", str(tmp_path)])  # a directory, not a file
        assert code == 2
        err = capsys.readouterr().err
        _one_diagnostic_line(err)
        assert "cannot read --input" in err

    def test_non_utf8_input_file(self, artifact, tmp_path, capsys):
        binary = tmp_path / "garbage.bin"
        binary.write_bytes(b"\xff\xfe\x00 not text \x9c")
        code = cli.main(["predict", "--pipeline", artifact, "--input", str(binary)])
        assert code == 2
        _one_diagnostic_line(capsys.readouterr().err)

    def test_unknown_domain(self, artifact, capsys):
        code = cli.main(["predict", "--pipeline", artifact,
                         "--text", "some news", "--domain", "astrology"])
        assert code == 2
        err = capsys.readouterr().err
        _one_diagnostic_line(err)
        assert "astrology" in err

    def test_no_texts_given(self, artifact, capsys):
        code = cli.main(["predict", "--pipeline", artifact])
        assert code == 2
        err = capsys.readouterr().err
        _one_diagnostic_line(err)
        assert "no texts" in err

    def test_valid_artifact_still_predicts(self, artifact, capsys):
        code = cli.main(["predict", "--pipeline", artifact,
                         "--text", "breaking dom1_topic3 fake_sig_1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "p(fake)=" in out


class TestPredictSubprocess:
    def test_corrupt_artifact_prints_no_traceback_in_a_real_process(
            self, artifact, tmp_path):
        """The end-user view: exit 2, a one-line stderr, zero traceback."""
        _flip_byte(os.path.join(artifact, "weights.npz"))
        env = dict(os.environ, PYTHONPATH=SRC)
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "predict",
             "--pipeline", artifact, "--text", "some news"],
            capture_output=True, text=True, env=env, timeout=120)
        assert result.returncode == 2
        assert "Traceback" not in result.stderr
        assert result.stderr.startswith("predict: ")
        assert result.stderr.strip().count("\n") == 0


class TestVerifySubcommand:
    """`repro verify`: exit 0 on intact artifacts, 2 with per-file diagnosis."""

    def test_intact_artifact_verifies_clean(self, artifact, capsys):
        code = cli.main(["verify", "--pipeline", artifact])
        out = capsys.readouterr().out
        assert code == 0
        assert "all" in out and "files intact" in out
        # One status line per recorded file, each carrying a digest prefix.
        ok_lines = [line for line in out.splitlines() if line.startswith("  ok")]
        assert len(ok_lines) >= 3  # manifest, weights, vocab at minimum
        assert all("sha256=" in line for line in ok_lines)

    def test_corrupt_file_is_named_with_both_digests(self, artifact, capsys):
        _flip_byte(os.path.join(artifact, "weights.npz"))
        code = cli.main(["verify", "--pipeline", artifact])
        captured = capsys.readouterr()
        assert code == 2
        corrupt = [line for line in captured.out.splitlines()
                   if line.startswith("  CORRUPT")]
        assert len(corrupt) == 1
        assert "weights.npz" in corrupt[0]
        assert "expected sha256=" in corrupt[0] and "actual=" in corrupt[0]
        assert "1 of" in captured.err and "damaged" in captured.err
        assert "Traceback" not in captured.err

    def test_missing_file_is_reported(self, artifact, capsys):
        os.remove(os.path.join(artifact, "vocab.json"))
        code = cli.main(["verify", "--pipeline", artifact])
        out = capsys.readouterr().out
        assert code == 2
        assert any(line.startswith("  MISSING") and "vocab.json" in line
                   for line in out.splitlines())

    def test_nonexistent_artifact_path(self, tmp_path, capsys):
        code = cli.main(["verify", "--pipeline", str(tmp_path / "nowhere")])
        err = capsys.readouterr().err
        assert code == 2
        assert "no pipeline artifact" in err

    def test_legacy_artifact_without_checksums_passes_with_note(
            self, artifact, capsys):
        os.remove(os.path.join(artifact, "checksums.json"))
        code = cli.main(["verify", "--pipeline", artifact])
        out = capsys.readouterr().out
        assert code == 0
        assert "legacy artifact" in out

    def test_unreadable_checksums_file(self, artifact, capsys):
        with open(os.path.join(artifact, "checksums.json"), "w") as handle:
            handle.write("{not json")
        code = cli.main(["verify", "--pipeline", artifact])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot read checksums.json" in err
