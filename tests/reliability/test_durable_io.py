"""Atomic writes and corruption refusal across every durable artifact format."""

from __future__ import annotations

import json
import os

import pytest

from repro.models import build_model
from repro.nn import CheckpointError, load_checkpoint, save_checkpoint
from repro.reliability import (
    FaultPlan,
    InjectedFault,
    atomic_write_text,
    atomic_writer,
    inject,
    sha256_bytes,
    sha256_file,
)
from repro.serve import (
    CHECKSUMS_FILE,
    MANIFEST_FILE,
    VOCAB_FILE,
    WEIGHTS_FILE,
    PipelineError,
    load_pipeline,
    verify_pipeline,
)


def _flip_byte(path: str, offset: int) -> None:
    with open(path, "rb") as handle:
        blob = bytearray(handle.read())
    blob[offset % len(blob)] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(bytes(blob))


class TestAtomicWriter:
    def test_success_replaces_content(self, tmp_path):
        path = str(tmp_path / "out.txt")
        digest = atomic_write_text(path, "first")
        assert open(path).read() == "first"
        assert digest == sha256_bytes(b"first") == sha256_file(path)
        atomic_write_text(path, "second")
        assert open(path).read() == "second"

    def test_error_inside_block_leaves_target_untouched(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "intact")
        with pytest.raises(RuntimeError):
            with atomic_writer(path, "w") as handle:
                handle.write("partial garbage")
                raise RuntimeError("crash mid-write")
        assert open(path).read() == "intact"
        assert os.listdir(tmp_path) == ["out.txt"]  # no temp litter

    def test_injected_write_fault_preserves_old_file(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "old")
        with inject(FaultPlan().fail("io.write")):
            with pytest.raises(InjectedFault):
                atomic_write_text(path, "new")
        assert open(path).read() == "old"

    def test_read_modes_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="write mode"):
            with atomic_writer(str(tmp_path / "x"), "r"):
                pass


class TestCheckpointCorruption:
    @pytest.fixture
    def checkpoint(self, tmp_path, make_world):
        world = make_world()
        model = build_model("textcnn_s", world.config)
        path = str(tmp_path / "model.npz")
        save_checkpoint(model, path)
        return path, world.config

    @pytest.mark.parametrize("where", ["header", "middle", "tail"])
    def test_single_flipped_byte_is_refused(self, checkpoint, where):
        path, config = checkpoint
        size = os.path.getsize(path)
        # "header" hits the first entry's filename (offset 35): zip structure
        # damage.  "middle" hits array data: caught by the SHA-256 checksums.
        # "tail" hits the central directory: unreadable archive.
        offset = {"header": 35, "middle": size // 2, "tail": size - 30}[where]
        _flip_byte(path, offset)
        with pytest.raises(CheckpointError):
            load_checkpoint(build_model("textcnn_s", config), path)

    def test_truncated_checkpoint_is_refused(self, checkpoint):
        path, config = checkpoint
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            load_checkpoint(build_model("textcnn_s", config), path)

    def test_missing_checkpoint_is_a_readable_error(self, tmp_path, make_world):
        config = make_world().config
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(build_model("textcnn_s", config),
                            str(tmp_path / "nowhere.npz"))

    def test_save_is_atomic_under_write_fault(self, checkpoint):
        path, config = checkpoint
        reference = build_model("textcnn_s", config)
        with inject(FaultPlan().fail("io.write")):
            with pytest.raises(InjectedFault):
                save_checkpoint(reference, path)
        # the pre-fault checkpoint is still fully loadable
        load_checkpoint(build_model("textcnn_s", config), path)


class TestPipelineCorruption:
    @pytest.mark.parametrize("filename", [MANIFEST_FILE, VOCAB_FILE, WEIGHTS_FILE])
    def test_single_flipped_byte_in_any_file_is_refused(self, artifact, filename):
        _flip_byte(os.path.join(artifact, filename), offset=200)
        with pytest.raises(PipelineError, match="checksum mismatch"):
            load_pipeline(artifact)

    def test_unreadable_checksums_sidecar_is_refused(self, artifact):
        with open(os.path.join(artifact, CHECKSUMS_FILE), "w") as handle:
            handle.write("{not json")
        with pytest.raises(PipelineError):
            load_pipeline(artifact)

    def test_file_missing_from_sidecar_manifest_is_refused(self, artifact):
        os.unlink(os.path.join(artifact, VOCAB_FILE))
        with pytest.raises(PipelineError):
            load_pipeline(artifact)

    def test_legacy_artifact_without_sidecar_still_loads(self, artifact):
        os.unlink(os.path.join(artifact, CHECKSUMS_FILE))
        assert verify_pipeline(artifact) == {}
        pipeline = load_pipeline(artifact)
        assert pipeline.source_path == artifact

    def test_missing_artifact_directory(self, tmp_path):
        with pytest.raises(PipelineError, match="no pipeline artifact"):
            load_pipeline(str(tmp_path / "nowhere"))

    def test_verify_reports_every_tracked_file(self, artifact):
        checked = verify_pipeline(artifact)
        assert sorted(checked) == sorted([MANIFEST_FILE, VOCAB_FILE, WEIGHTS_FILE])


class TestResultsDurability:
    def test_save_results_is_atomic_under_write_fault(self, tmp_path):
        from repro.experiments.io import load_results, save_results

        path = str(tmp_path / "results.json")
        save_results({"f1": 0.5}, path)
        with inject(FaultPlan().fail("io.write")):
            with pytest.raises(InjectedFault):
                save_results({"f1": 0.9}, path)
        assert load_results(path)["f1"] == 0.5

    def test_truncated_results_json_is_a_readable_error(self, tmp_path):
        from repro.experiments.io import save_results, load_results

        path = str(tmp_path / "results.json")
        save_results({"f1": 0.5, "rows": list(range(50))}, path)
        blob = open(path).read()
        open(path, "w").write(blob[: len(blob) // 2])
        with pytest.raises(ValueError, match="not valid JSON"):
            load_results(path)


class TestSnapshotCorruption:
    def test_single_flipped_byte_in_snapshot_is_refused(self, tmp_path, make_world):
        from repro.core import SnapshotError, Trainer, TrainerConfig, load_snapshot
        from repro.utils import set_global_seed

        set_global_seed(0)
        world = make_world()
        train, _ = world.loaders()
        trainer = Trainer(build_model("textcnn_s", world.config),
                          TrainerConfig(epochs=1, learning_rate=2e-3))
        trainer.fit(train)
        path = str(tmp_path / "trainer.snap.npz")
        trainer.snapshot(path)
        load_snapshot(path)  # sanity: intact snapshot round-trips
        _flip_byte(path, os.path.getsize(path) // 2)
        with pytest.raises(SnapshotError):
            load_snapshot(path)
