"""Graceful degradation in serving: isolate poisoned items, stay available.

A single request that crashes the engine must fail *alone*: the other items
in its micro-batch keep their bit-identical predictions (GEMM rows are
independent, and the predictor substitutes a donor text rather than shrinking
the batch, so BLAS batch-shape sensitivity cannot perturb survivors).
"""

from __future__ import annotations

import math

import pytest

from repro.reliability import FaultPlan, InjectedFault, inject
from repro.serve import Prediction, load_pipeline

BATCH = 32


@pytest.fixture
def predictor(artifact):
    return load_pipeline(artifact).predictor()


@pytest.fixture
def texts():
    return [f"breaking dom{i % 3}_topic{i} fake_sig_{i % 2}" for i in range(BATCH)]


def _poison_plan(poison_text: str) -> FaultPlan:
    """Fail any encoder batch containing ``poison_text`` — data-dependent chaos."""
    return FaultPlan().fail("serve.encode", times=None,
                            when=lambda d: poison_text in d.get("texts", ()))


class TestPredictSafe:
    def test_single_poisoned_item_fails_alone_bit_identically(self, predictor, texts):
        reference = predictor.predict(texts)
        poison_index = 13
        plan = _poison_plan(texts[poison_index])
        with inject(plan):
            predictions = predictor.predict_safe(texts)
        assert plan.fired > 0
        assert [i for i, p in enumerate(predictions) if not p.ok] == [poison_index]
        failed = predictions[poison_index]
        assert "InjectedFault" in failed.error
        assert failed.label_name == "error" and math.isnan(failed.probability_fake)
        for index, (got, want) in enumerate(zip(predictions, reference)):
            if index == poison_index:
                continue
            assert got.probabilities == want.probabilities, index
            assert got.label == want.label

    def test_clean_batch_matches_strict_predict(self, predictor, texts):
        strict = predictor.predict(texts)
        safe = predictor.predict_safe(texts)
        assert [p.probabilities for p in safe] == [p.probabilities for p in strict]

    def test_invalid_inputs_reported_per_item_without_engine_calls(self, predictor):
        out = predictor.predict_safe(["", "   ", 42, "x" * 200_000,
                                      "ok text dom1_topic3"])
        assert [p.ok for p in out] == [False, False, False, False, True]
        assert "empty" in out[0].error
        assert "string" in out[2].error
        assert "character limit" in out[3].error

    def test_systemic_failure_reraises_instead_of_marking_everything(self, predictor, texts):
        """Total engine outage is not per-item poison: callers must see it."""
        with inject(FaultPlan().fail("serve.encode", times=None)):
            with pytest.raises(InjectedFault):
                predictor.predict_safe(texts)

    def test_multiple_poisoned_items_all_isolated(self, predictor, texts):
        reference = predictor.predict(texts)
        bad = {5, 21}
        plan = FaultPlan().fail(
            "serve.encode", times=None,
            when=lambda d: any(texts[i] in d.get("texts", ()) for i in bad))
        with inject(plan):
            predictions = predictor.predict_safe(texts)
        assert {i for i, p in enumerate(predictions) if not p.ok} == bad
        for index in set(range(BATCH)) - bad:
            assert predictions[index].probabilities == reference[index].probabilities


class TestMicroBatcherDegradation:
    def test_poisoned_ticket_fails_alone(self, predictor, texts):
        reference = predictor.predict(texts)
        poison_index = 13
        with inject(_poison_plan(texts[poison_index])):
            with predictor.microbatch(max_batch=BATCH, max_latency_ms=1e9) as queue:
                tickets = [queue.submit(text) for text in texts]
        assert all(ticket.done for ticket in tickets)
        assert queue.items_errored == 1
        for index, ticket in enumerate(tickets):
            if index == poison_index:
                assert not ticket.result.ok
            else:
                assert ticket.result.probabilities == reference[index].probabilities

    def test_submit_rejects_invalid_requests_upfront(self, predictor):
        with predictor.microbatch(max_batch=4, max_latency_ms=1e9) as queue:
            with pytest.raises(ValueError, match="invalid request"):
                queue.submit("")
            with pytest.raises(ValueError, match="invalid request"):
                queue.submit(12345)

    def test_exception_exit_still_flushes_pending_tickets(self, predictor, texts):
        with pytest.raises(RuntimeError, match="caller bug"):
            with predictor.microbatch(max_batch=BATCH, max_latency_ms=1e9) as queue:
                tickets = [queue.submit(text) for text in texts[:4]]
                raise RuntimeError("caller bug")
        assert all(ticket.done and ticket.result.ok for ticket in tickets)

    def test_exception_exit_with_dead_engine_errors_tickets_not_suppresses(
            self, predictor, texts):
        """Drain failing during exception exit must not mask the original error."""
        with inject(FaultPlan().fail("serve.encode", times=None)):
            with pytest.raises(RuntimeError, match="caller bug"):
                with predictor.microbatch(max_batch=BATCH, max_latency_ms=1e9) as queue:
                    tickets = [queue.submit(text) for text in texts[:4]]
                    raise RuntimeError("caller bug")
        assert all(ticket.done for ticket in tickets)
        assert all(not ticket.result.ok for ticket in tickets)


class TestHealth:
    def test_healthy_pipeline_reports_ok(self, predictor, artifact):
        report = predictor.health()
        assert report["status"] == "ok"
        assert report["checks"]["artifact"] == "ok"
        assert report["checks"]["inference"] == "ok"
        assert report["source_path"] == artifact

    def test_corrupted_artifact_degrades_health(self, predictor, artifact):
        import os
        weights = os.path.join(artifact, "weights.npz")
        blob = bytearray(open(weights, "rb").read())
        blob[100] ^= 0xFF
        open(weights, "wb").write(bytes(blob))
        report = predictor.health()
        assert report["status"] == "degraded"
        assert "checksum" in report["checks"]["artifact"]
        # inference itself still works from the in-memory weights
        assert report["checks"]["inference"] == "ok"

    def test_prediction_failure_record_shape(self):
        failed = Prediction.failure("boom", domain="science")
        assert not failed.ok and failed.error == "boom"
        assert failed.as_dict()["error"] == "boom"
        assert failed.label == -1
