"""Graceful shutdown: a real SIGTERM mid-fit snapshots, raises, and resumes.

These tests deliver actual signals to the test process (``os.kill`` on
ourselves).  A fault-plan ``when=`` predicate at the ``trainer.step`` site —
which always returns False, so it never injects anything — is used purely as
a precisely placed hook to fire the signal at a chosen batch.  The handler
only sets a flag; the trainer honours it at the next batch boundary, writes
a final snapshot through the ordinary ``snapshot()`` path, and raises
:class:`TrainingInterrupted` naming the file to resume from.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.core import (
    DTDBDConfig,
    DTDBDTrainer,
    Trainer,
    TrainerConfig,
    TrainingInterrupted,
    trap_termination,
)
from repro.core.dat import DATConfig, train_unbiased_teacher
from repro.models import ModelConfig, build_model
from repro.reliability import FaultPlan, inject
from repro.utils import set_global_seed


def _build_trainer(world, config=None):
    set_global_seed(0)
    model = build_model("textcnn_s", world.config)
    train, val = world.loaders()
    return Trainer(model, config or TrainerConfig(epochs=2, learning_rate=2e-3)), train, val


def _build_dtdbd(world, config=None):
    set_global_seed(0)
    train, val = world.loaders()
    student = build_model("textcnn_s", world.config)
    backbone = build_model("textcnn_s", ModelConfig(**{**world.config.to_dict(), "seed": 6}))
    unbiased, _ = train_unbiased_teacher(backbone, train, val,
                                         config=DATConfig(epochs=1), seed=0)
    clean = build_model("mdfend", ModelConfig(**{**world.config.to_dict(), "seed": 9}))
    Trainer(clean, TrainerConfig(epochs=1, learning_rate=2e-3)).fit(train)
    trainer = DTDBDTrainer(student, unbiased, clean,
                           config or DTDBDConfig(epochs=2, learning_rate=2e-3))
    return trainer, train, val


def _sigterm_at_batch(target_batch: int) -> FaultPlan:
    """A plan whose only effect is sending SIGTERM at the chosen batch."""

    def fire(detail: dict) -> bool:
        if detail.get("batch") == target_batch and detail.get("epoch") == 0:
            os.kill(os.getpid(), signal.SIGTERM)
        return False  # never actually inject a fault

    return FaultPlan().fail("trainer.step", when=fire)


class TestTrainerSignal:
    def test_sigterm_snapshots_and_raises(self, tmp_path, make_world):
        world = make_world()
        snap = str(tmp_path / "trainer.snap.npz")
        trainer, train, val = _build_trainer(
            world, TrainerConfig(epochs=2, learning_rate=2e-3,
                                 snapshot_path=snap))
        with inject(_sigterm_at_batch(3)):
            with pytest.raises(TrainingInterrupted) as excinfo:
                trainer.fit(train, val)
        assert excinfo.value.signal_name == "SIGTERM"
        assert excinfo.value.snapshot_path == snap
        assert "resume with trainer.resume" in str(excinfo.value)
        assert os.path.exists(snap)

    def test_resume_after_sigterm_matches_uninterrupted_run(
            self, tmp_path, make_world):
        """The signal path reuses the ordinary snapshot machinery, so the
        resumed run must be bit-identical to one that was never stopped."""
        world = make_world()
        reference, train, val = _build_trainer(world)
        ref_history = reference.fit(train, val)
        ref_state = reference.model.state_dict()

        snap = str(tmp_path / "trainer.snap.npz")
        interrupted, train, val = _build_trainer(
            world, TrainerConfig(epochs=2, learning_rate=2e-3,
                                 snapshot_path=snap))
        with inject(_sigterm_at_batch(3)):
            with pytest.raises(TrainingInterrupted):
                interrupted.fit(train, val)

        resumed, train, val = _build_trainer(world)
        resumed.resume(snap, train_loader=train)
        history = resumed.fit(train, val)
        assert history.train_losses == ref_history.train_losses
        for name, array in ref_state.items():
            assert np.array_equal(array, resumed.model.state_dict()[name]), name

    def test_sigterm_without_snapshot_path_names_the_fix(self, make_world):
        world = make_world()
        trainer, train, val = _build_trainer(
            world, TrainerConfig(epochs=1, learning_rate=2e-3))
        with inject(_sigterm_at_batch(2)):
            with pytest.raises(TrainingInterrupted,
                               match="set TrainerConfig.snapshot_path"):
                trainer.fit(train, val)

    def test_snapshot_on_signal_false_keeps_default_behaviour(self, make_world):
        """Opting out restores Python's default: SIGINT raises
        KeyboardInterrupt wherever it lands, and nothing is trapped."""
        world = make_world()
        trainer, train, val = _build_trainer(
            world, TrainerConfig(epochs=1, learning_rate=2e-3,
                                 snapshot_on_signal=False))

        def fire(detail: dict) -> bool:
            if detail.get("batch") == 2:
                os.kill(os.getpid(), signal.SIGINT)
            return False

        previous = signal.signal(signal.SIGINT, signal.default_int_handler)
        try:
            with inject(FaultPlan().fail("trainer.step", when=fire)):
                with pytest.raises(KeyboardInterrupt):
                    trainer.fit(train, val)
        finally:
            signal.signal(signal.SIGINT, previous)


class TestDTDBDSignal:
    def test_sigterm_snapshots_and_resumes_bit_identically(
            self, tmp_path, make_world):
        world = make_world()
        reference, train, val = _build_dtdbd(world)
        ref_history = reference.fit(train, val)
        ref_state = reference.student.state_dict()

        snap = str(tmp_path / "dtdbd.snap.npz")
        interrupted, train, val = _build_dtdbd(
            world, DTDBDConfig(epochs=2, learning_rate=2e-3,
                               snapshot_path=snap))
        with inject(_sigterm_at_batch(3)):
            with pytest.raises(TrainingInterrupted) as excinfo:
                interrupted.fit(train, val)
        assert excinfo.value.snapshot_path == snap

        resumed, train, val = _build_dtdbd(world)
        resumed.resume(snap, train_loader=train)
        history = resumed.fit(train, val)
        assert history.train_losses == ref_history.train_losses
        for name, array in ref_state.items():
            assert np.array_equal(array, resumed.student.state_dict()[name]), name


class TestTrapPrimitive:
    def test_trap_restores_previous_handlers(self):
        before = signal.getsignal(signal.SIGTERM)
        with trap_termination() as trap:
            assert not trap.tripped
            assert signal.getsignal(signal.SIGTERM) is not before
        assert signal.getsignal(signal.SIGTERM) is before

    def test_trap_records_first_signal_without_raising(self):
        with trap_termination() as trap:
            os.kill(os.getpid(), signal.SIGTERM)
            # Force the interpreter to run pending signal handlers.
            for _ in range(10):
                pass
            assert trap.tripped
            assert trap.signal_name == "SIGTERM"

    def test_disabled_trap_is_inert(self):
        before = signal.getsignal(signal.SIGTERM)
        with trap_termination(enabled=False) as trap:
            assert signal.getsignal(signal.SIGTERM) is before
            assert not trap.tripped

    def test_trap_from_worker_thread_is_inert(self):
        import threading

        results = {}

        def run():
            with trap_termination() as trap:
                results["tripped"] = trap.tripped

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(10)
        assert results == {"tripped": False}
