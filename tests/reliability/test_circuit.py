"""CircuitBreaker: trip on sustained failure, cool down, probe, recover."""

from __future__ import annotations

import pytest

from repro.reliability import CircuitBreaker, CircuitOpen, FaultPlan, inject


class FakeClock:
    """A manually stepped monotonic clock, so cooldowns need no sleeping."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _breaker(**kwargs) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    defaults = dict(name="encoder", failure_threshold=3, cooldown_s=1.0,
                    probe_jitter=0.0, seed=0, clock=clock)
    defaults.update(kwargs)
    return CircuitBreaker(**defaults), clock


def _boom():
    raise OSError("backend down")


class TestStateMachine:
    def test_trips_after_consecutive_failures(self):
        breaker, _ = _breaker()
        for _ in range(3):
            with pytest.raises(OSError):
                breaker.call(_boom)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpen, match="circuit 'encoder' is open"):
            breaker.call(lambda: "never reached")
        assert breaker.rejections == 1

    def test_success_resets_the_failure_count(self):
        breaker, _ = _breaker()
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(_boom)
        assert breaker.call(lambda: "fine") == "fine"
        for _ in range(2):
            with pytest.raises(OSError):
                breaker.call(_boom)
        assert breaker.state == "closed"  # 2+2 non-consecutive never trips

    def test_cooldown_transitions_to_half_open_probe(self):
        breaker, clock = _breaker()
        for _ in range(3):
            with pytest.raises(OSError):
                breaker.call(_boom)
        clock.advance(1.01)
        assert breaker.state == "half_open"
        assert breaker.call(lambda: "recovered") == "recovered"
        assert breaker.state == "closed"

    def test_failed_probe_reopens(self):
        breaker, clock = _breaker()
        for _ in range(3):
            with pytest.raises(OSError):
                breaker.call(_boom)
        clock.advance(1.01)
        with pytest.raises(OSError):
            breaker.call(_boom)
        assert breaker.state == "open"
        assert breaker.opened == 2
        # A fresh cooldown applies; still rejecting before it elapses.
        clock.advance(0.5)
        with pytest.raises(CircuitOpen):
            breaker.call(lambda: None)

    def test_open_rejection_names_cause_and_remaining_time(self):
        breaker, _ = _breaker()
        for _ in range(3):
            with pytest.raises(OSError):
                breaker.call(_boom)
        with pytest.raises(CircuitOpen, match="backend down") as excinfo:
            breaker.call(lambda: None)
        assert "next probe in" in str(excinfo.value)

    def test_unlisted_exceptions_do_not_count(self):
        breaker, _ = _breaker(failure_on=(OSError,))
        for _ in range(5):
            with pytest.raises(ValueError):
                breaker.call(lambda: (_ for _ in ()).throw(ValueError("logic bug")))
        assert breaker.state == "closed"
        assert breaker.failures == 0

    def test_reset_closes_immediately(self):
        breaker, _ = _breaker()
        for _ in range(3):
            with pytest.raises(OSError):
                breaker.call(_boom)
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.call(lambda: 42) == 42


class TestDeterminism:
    def test_probe_jitter_is_seeded(self):
        draws = []
        for _ in range(2):
            breaker, _ = _breaker(probe_jitter=0.5, seed=11)
            for _ in range(3):
                with pytest.raises(OSError):
                    breaker.call(_boom)
            draws.append(breaker._current_cooldown)
        assert draws[0] == draws[1]
        different, _ = _breaker(probe_jitter=0.5, seed=12)
        for _ in range(3):
            with pytest.raises(OSError):
                different.call(_boom)
        assert different._current_cooldown != draws[0]
        # Jitter stays inside the +/-50% band of the base cooldown.
        assert 0.5 <= draws[0] <= 1.5

    def test_snapshot_is_json_able_and_complete(self):
        import json

        breaker, _ = _breaker()
        with pytest.raises(OSError):
            breaker.call(_boom)
        breaker.call(lambda: None)
        snap = json.loads(json.dumps(breaker.snapshot()))
        assert snap["state"] == "closed"
        assert snap["calls"] == 2
        assert snap["successes"] == 1
        assert snap["failures"] == 1
        assert "OSError" in snap["last_error"]

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_s=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_jitter=2.0)


class TestPredictorIntegration:
    def test_sustained_encoder_outage_trips_and_recovers(self, artifact):
        """The predictor's encoder breaker converts a dead backend into fast
        rejections, then recovers through a probe once the backend heals."""
        from repro.reliability import RetryPolicy
        from repro.serve import load_pipeline

        clock = FakeClock()
        breaker = CircuitBreaker(name="encoder", failure_threshold=2,
                                 cooldown_s=10.0, probe_jitter=0.0, seed=0,
                                 clock=clock)
        predictor = load_pipeline(artifact).predictor(
            encoder_breaker=breaker,
            # Single attempt isolates the breaker from the retry layer.
            encoder_retry=RetryPolicy(attempts=1))
        plan = FaultPlan().fail("encoder.encode", times=None,
                                error=OSError("backend gone"))
        with inject(plan):
            for _ in range(2):
                with pytest.raises(OSError, match="backend gone"):
                    predictor.predict(["dom1_topic2 some news"])
        assert breaker.state == "open"
        # While open, scoring fails fast without touching the encoder.
        fired_before = plan.fired
        with pytest.raises(CircuitOpen, match="circuit 'encoder' is open"):
            predictor.predict(["dom1_topic2 some news"])
        assert plan.fired == fired_before
        health = predictor.health()
        assert "circuit open" in health["checks"]["encoder_circuit"]
        # Backend heals, cooldown elapses: the probe closes the circuit.
        clock.advance(10.01)
        [p] = predictor.predict(["dom1_topic2 some news"])
        assert p.ok
        assert breaker.state == "closed"
