"""End-to-end chaos narrative: crash training, resume, export, corrupt, refuse.

One compact tier-1 scenario walking the whole reliability story in order —
the same journey a real run takes when the machine dies under it:

1. a 2-epoch training run is killed mid-epoch by an injected fault;
2. a fresh trainer resumes from the last per-batch snapshot and finishes
   bit-identically to an uninterrupted reference run;
3. the resumed model is exported as a serving pipeline and scores raw text;
4. one flipped byte in the artifact is detected and refused readably;
5. re-exporting heals the artifact and serving resumes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import Trainer, TrainerConfig
from repro.models import build_model
from repro.reliability import FaultPlan, InjectedFault, inject
from repro.serve import Pipeline, PipelineError, load_pipeline, save_pipeline
from repro.utils import set_global_seed


def test_chaos_smoke_crash_resume_export_corrupt_refuse(tmp_path, make_world):
    world = make_world()

    def build(config=None):
        set_global_seed(0)
        model = build_model("textcnn_s", world.config)
        train, val = world.loaders()
        return Trainer(model, config or TrainerConfig(epochs=2, learning_rate=2e-3)), train, val

    # Reference: the run that never crashes.
    reference, train, val = build()
    ref_losses = reference.fit(train, val).train_losses

    # Crash at batch 6 of epoch 0, with per-batch snapshots on.
    snap = str(tmp_path / "trainer.snap.npz")
    crashed, train, val = build(TrainerConfig(epochs=2, learning_rate=2e-3,
                                              snapshot_path=snap, snapshot_every=1))
    with pytest.raises(InjectedFault):
        with inject(FaultPlan().fail("trainer.step", after=6)):
            crashed.fit(train, val)
    assert os.path.exists(snap)

    # Resume in a fresh trainer; the trajectory must match the reference bit-for-bit.
    resumed, train, val = build()
    resumed.resume(snap, train_loader=train)
    losses = resumed.fit(train, val).train_losses
    assert losses == ref_losses
    for name, array in reference.model.state_dict().items():
        assert np.array_equal(array, resumed.model.state_dict()[name]), name

    # Export the survivor as a serving artifact and score raw text.
    artifact = str(tmp_path / "detector")
    save_pipeline(Pipeline.from_training(resumed.model, world.vocab, world.encoder,
                                         max_length=16,
                                         domain_names=list(world.dataset.domain_names)),
                  artifact)
    predictor = load_pipeline(artifact).predictor()
    [prediction] = predictor.predict(["breaking dom1_topic3 fake_sig_1"])
    assert prediction.ok and prediction.label in (0, 1)

    # One flipped byte anywhere in the artifact is refused with a readable error.
    weights = os.path.join(artifact, "weights.npz")
    blob = bytearray(open(weights, "rb").read())
    blob[len(blob) // 2] ^= 0xFF
    open(weights, "wb").write(bytes(blob))
    with pytest.raises(PipelineError, match="checksum mismatch"):
        load_pipeline(artifact)
    assert predictor.health()["status"] == "degraded"

    # Re-exporting heals it (atomic replace of every file), serving resumes.
    save_pipeline(predictor.pipeline, artifact)
    healed = load_pipeline(artifact).predictor()
    [again] = healed.predict(["breaking dom1_topic3 fake_sig_1"])
    assert again.probabilities == prediction.probabilities
