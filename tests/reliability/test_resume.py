"""Kill-at-batch-k-then-resume must be bit-identical, in both engine dtypes.

Each scenario runs three times from the same seeds: an uninterrupted
reference, a run killed mid-epoch by an injected fault at the
``trainer.step`` site (with per-batch snapshots on), and a fresh process
image that resumes from the last snapshot.  Loss trajectories, final
parameters and (for DTDBD) the momentum weight history must match the
reference exactly — same bits, not just close.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DTDBDConfig, DTDBDTrainer, Trainer, TrainerConfig
from repro.core.dat import DATConfig, train_unbiased_teacher
from repro.models import ModelConfig, build_model
from repro.reliability import FaultPlan, InjectedFault, inject
from repro.tensor import default_dtype
from repro.utils import set_global_seed

DTYPES = ["float64", "float32"]


def _build_trainer(world, config=None):
    set_global_seed(0)
    model = build_model("textcnn_s", world.config)
    train, val = world.loaders()
    return Trainer(model, config or TrainerConfig(epochs=2, learning_rate=2e-3)), train, val


def _build_dtdbd(world, config=None):
    set_global_seed(0)
    train, val = world.loaders()
    student = build_model("textcnn_s", world.config)
    backbone = build_model("textcnn_s", ModelConfig(**{**world.config.to_dict(), "seed": 6}))
    unbiased, _ = train_unbiased_teacher(backbone, train, val,
                                         config=DATConfig(epochs=1), seed=0)
    clean = build_model("mdfend", ModelConfig(**{**world.config.to_dict(), "seed": 9}))
    Trainer(clean, TrainerConfig(epochs=1, learning_rate=2e-3)).fit(train)
    trainer = DTDBDTrainer(student, unbiased, clean,
                           config or DTDBDConfig(epochs=2, learning_rate=2e-3))
    return trainer, train, val


def _assert_states_equal(reference: dict, resumed: dict) -> None:
    assert reference.keys() == resumed.keys()
    for name, array in reference.items():
        assert array.dtype == resumed[name].dtype, name
        assert np.array_equal(array, resumed[name]), f"param {name} differs"


@pytest.mark.parametrize("dtype", DTYPES)
class TestTrainerResume:
    def test_kill_at_batch_k_then_resume_is_bit_identical(self, dtype, tmp_path, make_world):
        with default_dtype(dtype):
            world = make_world()
            reference, train, val = _build_trainer(world)
            ref_history = reference.fit(train, val)
            ref_state = reference.model.state_dict()

            snap = str(tmp_path / "trainer.snap.npz")
            crashed, train, val = _build_trainer(
                world, TrainerConfig(epochs=2, learning_rate=2e-3,
                                     snapshot_path=snap, snapshot_every=1))
            plan = FaultPlan().fail("trainer.step", after=5)
            with pytest.raises(InjectedFault):
                with inject(plan):
                    crashed.fit(train, val)
            assert plan.events[0].call_index == 5

            resumed, train, val = _build_trainer(world)
            resumed.resume(snap, train_loader=train)
            history = resumed.fit(train, val)

            assert history.train_losses == ref_history.train_losses
            assert [r.epoch for r in history] == [r.epoch for r in ref_history]
            _assert_states_equal(ref_state, resumed.model.state_dict())

    def test_kill_at_epoch_boundary_then_resume(self, dtype, tmp_path, make_world):
        """Crashing in epoch 1 resumes from the epoch-0 end-of-epoch snapshot."""
        with default_dtype(dtype):
            world = make_world()
            reference, train, val = _build_trainer(world)
            ref_losses = reference.fit(train, val).train_losses

            batches = len(train)
            snap = str(tmp_path / "trainer.snap.npz")
            crashed, train, val = _build_trainer(
                world, TrainerConfig(epochs=2, learning_rate=2e-3, snapshot_path=snap))
            with pytest.raises(InjectedFault):
                with inject(FaultPlan().fail("trainer.step", after=batches + 1)):
                    crashed.fit(train, val)

            resumed, train, val = _build_trainer(world)
            resumed.resume(snap, train_loader=train)
            assert resumed.fit(train, val).train_losses == ref_losses


@pytest.mark.parametrize("dtype", DTYPES)
class TestDTDBDResume:
    def test_kill_at_batch_k_then_resume_is_bit_identical(self, dtype, tmp_path, make_world):
        with default_dtype(dtype):
            world = make_world()
            reference, train, val = _build_dtdbd(world)
            ref_history = reference.fit(train, val)
            ref_weights = list(reference.weight_history)
            ref_state = reference.student.state_dict()

            snap = str(tmp_path / "dtdbd.snap.npz")
            crashed, train, val = _build_dtdbd(
                world, DTDBDConfig(epochs=2, learning_rate=2e-3,
                                   snapshot_path=snap, snapshot_every=1))
            with pytest.raises(InjectedFault):
                with inject(FaultPlan().fail("trainer.step", after=7)):
                    crashed.fit(train, val)

            resumed, train, val = _build_dtdbd(world)
            resumed.resume(snap, train_loader=train)
            history = resumed.fit(train, val)

            assert history.train_losses == ref_history.train_losses
            assert resumed.weight_history == ref_weights
            _assert_states_equal(ref_state, resumed.student.state_dict())


class TestSnapshotRobustness:
    def test_crash_during_snapshot_write_keeps_previous_snapshot(self, tmp_path, make_world):
        """An injected crash *inside* the snapshot write must not poison resume."""
        world = make_world()
        reference, train, val = _build_trainer(world)
        ref_losses = reference.fit(train, val).train_losses

        snap = str(tmp_path / "trainer.snap.npz")
        crashed, train, val = _build_trainer(
            world, TrainerConfig(epochs=2, learning_rate=2e-3,
                                 snapshot_path=snap, snapshot_every=1))
        plan = FaultPlan().fail("io.write", after=3,
                                when=lambda d: d.get("path") == snap)
        with pytest.raises(InjectedFault):
            with inject(plan):
                crashed.fit(train, val)

        # the atomically written snapshot from the batch before is intact
        resumed, train, val = _build_trainer(world)
        resumed.resume(snap, train_loader=train)
        assert resumed.fit(train, val).train_losses == ref_losses

    def test_resume_without_loader_defers_rng_restore(self, tmp_path, make_world):
        """``resume(path)`` then ``fit(loader)`` equals ``resume(path, loader)``."""
        world = make_world()
        reference, train, val = _build_trainer(world)
        ref_losses = reference.fit(train, val).train_losses

        snap = str(tmp_path / "trainer.snap.npz")
        crashed, train, val = _build_trainer(
            world, TrainerConfig(epochs=2, learning_rate=2e-3,
                                 snapshot_path=snap, snapshot_every=1))
        with pytest.raises(InjectedFault):
            with inject(FaultPlan().fail("trainer.step", after=4)):
                crashed.fit(train, val)

        resumed, train, val = _build_trainer(world)
        resumed.resume(snap)
        assert resumed.fit(train, val).train_losses == ref_losses
