"""Chaos-suite fixtures.

The session-scoped loaders in the repository conftest carry live RNG state
(shuffle streams) that resume tests consume and restore, so nothing here may
mutate them.  Instead every reliability test gets a factory that builds a
fresh, fully self-contained training world — dataset, vocabulary, encoder,
extractors, loaders — under the *currently active* engine dtype, which is how
the kill-and-resume tests pin bit-identity in both ``REPRO_DTYPE`` modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.data import DataLoader, MultiDomainNewsDataset, make_weibo21_like, stratified_split
from repro.encoders import (
    FrozenPretrainedEncoder,
    emotion_feature_extractor,
    style_feature_extractor,
)
from repro.models import ModelConfig, build_model
from repro.reliability import active_plan
from repro.serve import Pipeline, save_pipeline
from repro.utils import get_rng_state, set_global_seed, set_rng_state


@pytest.fixture(autouse=True)
def _isolate_global_state():
    """Restore the experiment RNG stream and assert no plan leaked."""
    state = get_rng_state()
    yield
    set_rng_state(state)
    assert active_plan() is None, "a FaultPlan leaked out of its inject() block"


# Per-test wall-clock limits come from the repository-root conftest's shared
# ``_suite_watchdog`` fixture (override with ``@pytest.mark.watchdog(s)``).


@dataclass
class TrainingWorld:
    """A fresh tiny corpus plus everything needed to train on it."""

    dataset: MultiDomainNewsDataset
    splits: object
    vocab: dict
    encoder: FrozenPretrainedEncoder
    extractors: dict
    config: ModelConfig

    def loaders(self, batch_size: int = 16):
        train = DataLoader(self.splits.train, self.vocab, max_length=16,
                           batch_size=batch_size, shuffle=True, seed=0,
                           feature_extractors=self.extractors)
        val = DataLoader(self.splits.val, self.vocab, max_length=16,
                         batch_size=batch_size, shuffle=False, seed=0,
                         feature_extractors=self.extractors)
        return train, val


@pytest.fixture
def make_world():
    """Factory building a :class:`TrainingWorld` in the current engine dtype."""

    def build(scale: float = 0.04) -> TrainingWorld:
        dataset = make_weibo21_like(scale=scale, seed=7)
        splits = stratified_split(dataset, train_fraction=0.6, val_fraction=0.1, seed=0)
        vocab = splits.train.build_vocabulary()
        encoder = FrozenPretrainedEncoder(len(vocab), output_dim=16, seed=3)
        extractors = {"plm": encoder.as_feature_extractor(),
                      "style": style_feature_extractor,
                      "emotion": emotion_feature_extractor}
        config = ModelConfig(plm_dim=16, num_domains=dataset.num_domains,
                             cnn_channels=8, kernel_sizes=(1, 2, 3), rnn_hidden=8,
                             hidden_dim=16, mlp_hidden=(16,), num_experts=3,
                             expert_hidden=12, domain_embedding_dim=6, seed=5)
        return TrainingWorld(dataset=dataset, splits=splits, vocab=vocab,
                             encoder=encoder, extractors=extractors, config=config)

    return build


@pytest.fixture(scope="module")
def serving_pipeline(tiny_vocab, tiny_encoder, model_config, tiny_dataset):
    """An untrained but fully wired pipeline (deterministic predictions)."""
    set_global_seed(0)
    model = build_model("textcnn_s", model_config)
    return Pipeline.from_training(model, tiny_vocab, tiny_encoder, max_length=16,
                                  domain_names=list(tiny_dataset.domain_names))


@pytest.fixture
def artifact(serving_pipeline, tmp_path):
    """A freshly saved pipeline artifact directory (safe to corrupt)."""
    path = str(tmp_path / "detector")
    save_pipeline(serving_pipeline, path)
    return path
