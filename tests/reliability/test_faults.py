"""FaultPlan / fault_point / inject semantics: deterministic, replayable chaos."""

from __future__ import annotations

import time

import pytest

from repro.reliability import (
    FaultPlan,
    InjectedFault,
    active_plan,
    fault_point,
    inject,
)


class TestFaultPoint:
    def test_no_plan_is_a_no_op(self):
        assert active_plan() is None
        fault_point("anything.at.all", payload=1)  # must not raise

    def test_fail_raises_injected_fault_naming_the_site(self):
        with inject(FaultPlan().fail("io.read")):
            with pytest.raises(InjectedFault, match="io.read"):
                fault_point("io.read")

    def test_non_matching_site_passes_through(self):
        plan = FaultPlan().fail("io.read")
        with inject(plan):
            fault_point("io.write")
        assert plan.fired == 0

    def test_fnmatch_wildcard_sites(self):
        plan = FaultPlan().fail("io.*", times=None)
        with inject(plan):
            with pytest.raises(InjectedFault):
                fault_point("io.read")
            with pytest.raises(InjectedFault):
                fault_point("io.write")
            fault_point("serve.flush")
        assert plan.fired == 2

    def test_custom_error_class_and_instance(self):
        with inject(FaultPlan().fail("a", error=OSError)):
            with pytest.raises(OSError):
                fault_point("a")
        marker = TimeoutError("backend stalled")
        with inject(FaultPlan().fail("b", error=marker)):
            with pytest.raises(TimeoutError, match="backend stalled"):
                fault_point("b")


class TestScheduling:
    def test_after_skips_leading_calls(self):
        plan = FaultPlan().fail("site", after=2)
        with inject(plan):
            fault_point("site")
            fault_point("site")
            with pytest.raises(InjectedFault, match="call #2"):
                fault_point("site")
        assert plan.events[0].call_index == 2

    def test_times_caps_firings_and_none_is_unlimited(self):
        plan = FaultPlan().fail("site", times=2)
        with inject(plan):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    fault_point("site")
            fault_point("site")  # budget spent
        assert plan.fired == 2

        unlimited = FaultPlan().fail("site", times=None)
        with inject(unlimited):
            for _ in range(5):
                with pytest.raises(InjectedFault):
                    fault_point("site")
        assert unlimited.fired == 5

    def test_when_predicate_gates_before_counting(self):
        plan = FaultPlan().fail("serve.encode", after=1,
                                when=lambda d: "POISON" in d.get("text", ""))
        with inject(plan):
            fault_point("serve.encode", text="clean")       # not even counted
            fault_point("serve.encode", text="POISON 0")    # matching call #0
            with pytest.raises(InjectedFault):
                fault_point("serve.encode", text="POISON 1")
        assert plan.events[0].call_index == 1

    def test_probability_stream_is_seeded_and_replayable(self):
        def fire_pattern(plan):
            outcomes = []
            with inject(plan):
                for _ in range(40):
                    try:
                        fault_point("site")
                        outcomes.append(False)
                    except InjectedFault:
                        outcomes.append(True)
            return outcomes

        first = fire_pattern(FaultPlan(seed=11).fail("site", times=None, probability=0.3))
        second = fire_pattern(FaultPlan(seed=11).fail("site", times=None, probability=0.3))
        assert first == second
        assert 0 < sum(first) < 40
        other = fire_pattern(FaultPlan(seed=12).fail("site", times=None, probability=0.3))
        assert first != other

    def test_reset_rearms_rules_and_reseeds(self):
        plan = FaultPlan(seed=3).fail("site", times=None, probability=0.5)
        def run():
            outcomes = []
            with inject(plan):
                for _ in range(20):
                    try:
                        fault_point("site")
                        outcomes.append(False)
                    except InjectedFault:
                        outcomes.append(True)
            return outcomes

        first = run()
        plan.reset()
        assert plan.fired == 0 and plan.events == []
        assert run() == first

    def test_stall_sleeps_and_records_event(self):
        plan = FaultPlan().stall("io.read", delay_s=0.05)
        with inject(plan):
            start = time.perf_counter()
            fault_point("io.read")
            elapsed = time.perf_counter() - start
        assert elapsed >= 0.04
        assert plan.events[0].action == "stall"

    def test_negative_stall_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().stall("x", delay_s=-1.0)


class TestInject:
    def test_plans_do_not_nest(self):
        with inject(FaultPlan()):
            with pytest.raises(RuntimeError, match="does not nest"):
                with inject(FaultPlan()):
                    pass

    def test_plan_uninstalled_even_on_error(self):
        with pytest.raises(InjectedFault):
            with inject(FaultPlan().fail("site")) as plan:
                assert active_plan() is plan
                fault_point("site")
        assert active_plan() is None

    def test_rules_compose_into_one_plan(self):
        plan = (FaultPlan()
                .fail("io.read", after=1)
                .stall("io.write", delay_s=0.0, times=None))
        with inject(plan):
            fault_point("io.write")
            fault_point("io.read")
            with pytest.raises(InjectedFault):
                fault_point("io.read")
        assert [event.action for event in plan.events] == ["stall", "raise"]
