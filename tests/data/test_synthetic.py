"""The synthetic corpus generator: statistics fidelity and bias structure."""

import numpy as np
import pytest

from repro.data import (
    ENGLISH_DOMAIN_SPECS,
    FAKE_LABEL,
    REAL_LABEL,
    WEIBO21_DOMAIN_SPECS,
    SyntheticCorpusConfig,
    SyntheticNewsGenerator,
    make_case_study_probes,
    make_english_like,
    make_weibo21_like,
)
from repro.data.statistics import dataset_statistics_table, domain_statistics, imbalance_summary


class TestDomainSpecs:
    def test_weibo21_totals_match_table4(self):
        total = sum(spec.total for spec in WEIBO21_DOMAIN_SPECS)
        fake = sum(spec.fake for spec in WEIBO21_DOMAIN_SPECS)
        assert total == 9128
        assert fake == 4488
        assert len(WEIBO21_DOMAIN_SPECS) == 9

    def test_english_totals_match_table5(self):
        total = sum(spec.total for spec in ENGLISH_DOMAIN_SPECS)
        fake = sum(spec.fake for spec in ENGLISH_DOMAIN_SPECS)
        assert total == 28764
        assert fake == 6763
        assert len(ENGLISH_DOMAIN_SPECS) == 3

    def test_fake_ratio(self):
        disaster = next(s for s in WEIBO21_DOMAIN_SPECS if s.name == "disaster")
        assert disaster.fake_ratio == pytest.approx(0.761, abs=0.01)


class TestGenerator:
    def test_full_scale_counts_exact(self):
        dataset = make_weibo21_like(scale=1.0, seed=0)
        stats = {row.name: row for row in domain_statistics(dataset)}
        for spec in WEIBO21_DOMAIN_SPECS:
            assert stats[spec.name].fake == spec.fake
            assert stats[spec.name].real == spec.real

    def test_scaled_counts_proportional(self):
        dataset = make_weibo21_like(scale=0.1, seed=0)
        stats = {row.name: row for row in domain_statistics(dataset)}
        for spec in WEIBO21_DOMAIN_SPECS:
            assert stats[spec.name].fake == max(4, round(spec.fake * 0.1))

    def test_english_generator(self):
        dataset = make_english_like(scale=0.02, seed=0)
        assert dataset.num_domains == 3
        assert set(dataset.domain_names) == {"gossipcop", "politifact", "covid"}

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            SyntheticCorpusConfig(scale=0.0).scaled_specs()

    def test_deterministic_given_seed(self):
        a = make_weibo21_like(scale=0.05, seed=11)
        b = make_weibo21_like(scale=0.05, seed=11)
        assert [item.text for item in a][:20] == [item.text for item in b][:20]

    def test_different_seeds_differ(self):
        a = make_weibo21_like(scale=0.05, seed=1)
        b = make_weibo21_like(scale=0.05, seed=2)
        assert [item.text for item in a][:10] != [item.text for item in b][:10]

    def test_items_have_metadata_and_names(self, tiny_dataset):
        item = tiny_dataset[0]
        assert "has_signal" in item.metadata
        assert item.domain_name == tiny_dataset.domain_names[item.domain]
        assert len(item.text.split()) >= 5

    def test_signal_strength_controls_ambiguity(self):
        config = SyntheticCorpusConfig(scale=0.05, seed=0, signal_strength=1.0)
        dataset = SyntheticNewsGenerator(config).generate()
        assert all(item.metadata["has_signal"] for item in dataset)
        config = SyntheticCorpusConfig(scale=0.05, seed=0, signal_strength=0.0)
        dataset = SyntheticNewsGenerator(config).generate()
        assert not any(item.metadata["has_signal"] for item in dataset)

    def test_fake_items_contain_fake_signal_tokens(self):
        dataset = make_weibo21_like(scale=0.05, seed=3)
        for item in dataset:
            tokens = set(item.tokens())
            has_fake_sig = any(t.startswith("fakesig") for t in tokens)
            has_real_sig = any(t.startswith("realsig") for t in tokens)
            if item.metadata["has_signal"]:
                if item.label == FAKE_LABEL:
                    assert has_fake_sig and not has_real_sig
                else:
                    assert has_real_sig and not has_fake_sig

    def test_domain_topic_tokens_present(self):
        dataset = make_weibo21_like(scale=0.05, seed=4)
        for item in list(dataset)[:50]:
            assert any(token.startswith(item.domain_name) for token in item.tokens())


class TestCaseStudyProbes:
    def test_three_real_ambiguous_probes(self):
        probes = make_case_study_probes(dataset_seed=1)
        assert len(probes) == 3
        for probe in probes:
            assert probe.item.label == REAL_LABEL
            assert probe.item.metadata["has_signal"] is False
            assert probe.description
        domains = {probe.item.domain_name for probe in probes}
        assert {"entertainment", "politics", "disaster"} == domains


class TestStatisticsTables:
    def test_table1_percentages(self):
        dataset = make_weibo21_like(scale=1.0, seed=0)
        table = dataset_statistics_table(dataset)
        by_name = {row["domain"]: row for row in table["domains"]}
        # Numbers from Table I of the paper.
        assert by_name["science"]["pct_news"] == pytest.approx(2.6, abs=0.1)
        assert by_name["society"]["pct_news"] == pytest.approx(29.2, abs=0.2)
        assert by_name["disaster"]["pct_fake"] == pytest.approx(76.1, abs=0.2)
        assert by_name["finance"]["pct_fake"] == pytest.approx(27.4, abs=0.2)
        assert table["total"] == 9128

    def test_imbalance_summary(self, tiny_dataset):
        summary = imbalance_summary(tiny_dataset)
        assert summary["news_share_spread"] > 0
        assert summary["fake_ratio_spread"] > 0
        assert summary["fake_ratio_max"] <= 100.0
