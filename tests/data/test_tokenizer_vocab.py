"""Tokenizers and the vocabulary."""

import numpy as np
import pytest

from repro.data import (
    CharNGramTokenizer,
    Vocabulary,
    WhitespaceTokenizer,
    register_tokenizer,
    tokenizer_from_spec,
)


class TestWhitespaceTokenizer:
    def test_basic_split(self):
        assert WhitespaceTokenizer()("Hello  WORLD foo") == ["hello", "world", "foo"]

    def test_no_lowercase(self):
        assert WhitespaceTokenizer(lowercase=False)("Hello World") == ["Hello", "World"]

    def test_max_length(self):
        assert WhitespaceTokenizer(max_length=2)("a b c d") == ["a", "b"]

    def test_empty_string(self):
        assert WhitespaceTokenizer()("") == []


class TestCharNGramTokenizer:
    def test_trigram(self):
        assert CharNGramTokenizer(n=3)("abcd") == ["abc", "bcd"]

    def test_short_text(self):
        assert CharNGramTokenizer(n=5)("ab") == ["ab"]
        assert CharNGramTokenizer(n=3)("") == []

    def test_whitespace_removed(self):
        assert CharNGramTokenizer(n=2)("a b") == ["ab"]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            CharNGramTokenizer(n=0)


class TestVocabulary:
    def test_reserved_tokens(self):
        vocab = Vocabulary()
        assert len(vocab) == 2
        assert vocab.pad_id == 0 and vocab.unk_id == 1
        assert vocab.id_to_token(0) == Vocabulary.PAD_TOKEN

    def test_build_orders_by_frequency(self):
        vocab = Vocabulary(["b", "a", "a", "a", "b", "c"])
        assert vocab.token_to_id("a") == 2
        assert vocab.token_to_id("b") == 3
        assert vocab.token_to_id("c") == 4

    def test_min_freq_filters(self):
        vocab = Vocabulary(["a", "a", "b"], min_freq=2)
        assert "a" in vocab and "b" not in vocab

    def test_max_size(self):
        vocab = Vocabulary(list("aaabbc"), max_size=3)
        assert len(vocab) == 3

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary(["known"])
        assert vocab.token_to_id("missing") == vocab.unk_id
        assert vocab.id_to_token(9999) == Vocabulary.UNK_TOKEN

    def test_encode_truncate_and_pad(self):
        vocab = Vocabulary(["a", "b", "c"])
        ids = vocab.encode(["a", "b", "c", "a"], max_length=6, pad=True)
        assert len(ids) == 6
        assert ids[-1] == vocab.pad_id
        assert vocab.encode(["a", "b", "c"], max_length=2) == vocab.encode(["a", "b"])

    def test_decode_strips_padding(self):
        vocab = Vocabulary(["x", "y"])
        ids = vocab.encode(["x", "y"], max_length=4, pad=True)
        assert vocab.decode(ids) == ["x", "y"]
        assert len(vocab.decode(ids, strip_pad=False)) == 4

    def test_from_documents(self):
        vocab = Vocabulary.from_documents([["a", "b"], ["b", "c"]])
        assert all(token in vocab for token in "abc")

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("tok")
        second = vocab.add("tok")
        assert first == second


class TestTokenizerSpecs:
    def test_whitespace_round_trip(self):
        tokenizer = WhitespaceTokenizer(lowercase=False, max_length=7)
        rebuilt = tokenizer_from_spec(tokenizer.to_spec())
        assert isinstance(rebuilt, WhitespaceTokenizer)
        assert rebuilt.lowercase is False and rebuilt.max_length == 7
        assert rebuilt("A b C d") == tokenizer("A b C d")

    def test_char_ngram_round_trip(self):
        tokenizer = CharNGramTokenizer(n=2, lowercase=True, max_length=5)
        rebuilt = tokenizer_from_spec(tokenizer.to_spec())
        assert isinstance(rebuilt, CharNGramTokenizer)
        assert rebuilt("AbCdEf") == tokenizer("AbCdEf")

    def test_unknown_kind_rejected_with_hint(self):
        with pytest.raises(KeyError, match="register_tokenizer"):
            tokenizer_from_spec({"kind": "sentencepiece"})

    def test_register_tokenizer_requires_kind_and_uniqueness(self):
        class NoKind:
            kind = ""

        with pytest.raises(ValueError, match="kind"):
            register_tokenizer(NoKind)
        with pytest.raises(ValueError, match="already registered"):
            class Clash:
                kind = WhitespaceTokenizer.kind
            register_tokenizer(Clash)
        # re-registering the same class is an idempotent no-op
        register_tokenizer(WhitespaceTokenizer)


class TestVocabularySpec:
    def test_round_trip_preserves_every_id(self):
        vocab = Vocabulary("the quick brown fox the the quick".split())
        rebuilt = Vocabulary.from_spec(vocab.to_spec())
        assert len(rebuilt) == len(vocab)
        for token in ("the", "quick", "brown", "fox", Vocabulary.PAD_TOKEN):
            assert rebuilt.token_to_id(token) == vocab.token_to_id(token)

    def test_spec_is_json_serialisable(self):
        import json

        vocab = Vocabulary("a b c".split())
        assert Vocabulary.from_spec(json.loads(json.dumps(vocab.to_spec())))\
            .token_to_id("b") == vocab.token_to_id("b")

    def test_bad_reserved_prefix_rejected(self):
        with pytest.raises(ValueError, match="must start with"):
            Vocabulary.from_spec({"tokens": ["a", "b", "c"]})

    def test_duplicate_tokens_rejected(self):
        tokens = [Vocabulary.PAD_TOKEN, Vocabulary.UNK_TOKEN, "a", "a"]
        with pytest.raises(ValueError, match="duplicate"):
            Vocabulary.from_spec({"tokens": tokens})


class TestEncodeTextsParity:
    """encode_texts IS the dataset/loader encode path (shared implementation)."""

    def test_matches_dataset_encode(self):
        from repro.data import MultiDomainNewsDataset, NewsItem, encode_texts

        texts = ["alpha beta gamma", "alpha " * 30, "beta", ""]
        items = [NewsItem(text=text, label=0, domain=0, domain_name="d")
                 for text in texts]
        dataset = MultiDomainNewsDataset(items, ["d"])
        vocab = dataset.build_vocabulary()
        ids_a, mask_a = dataset.encode(vocab, max_length=8)
        ids_b, mask_b = encode_texts(texts, vocab, max_length=8)
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_array_equal(mask_a, mask_b)

    def test_truncation_padding_and_mask(self):
        from repro.data import encode_texts

        vocab = Vocabulary("a b c".split())
        ids, mask = encode_texts(["a b c a b c", "c", ""], vocab, max_length=4)
        assert ids.shape == mask.shape == (3, 4)
        assert mask.tolist() == [[1, 1, 1, 1], [1, 0, 0, 0], [0, 0, 0, 0]]
        assert (ids[1, 1:] == vocab.pad_id).all()
        assert (ids[2] == vocab.pad_id).all()

    def test_tokenizer_own_max_length_truncates_first(self):
        """A tokenizer-side cap shortens the mask, same as dataset encoding."""
        from repro.data import MultiDomainNewsDataset, NewsItem, encode_texts

        tokenizer = WhitespaceTokenizer(max_length=3)
        text = "a b c d e f"
        vocab = Vocabulary(text.split())
        ids, mask = encode_texts([text], vocab, max_length=5, tokenizer=tokenizer)
        assert mask[0].tolist() == [1, 1, 1, 0, 0]
        dataset = MultiDomainNewsDataset(
            [NewsItem(text=text, label=0, domain=0, domain_name="d")], ["d"])
        ids_d, mask_d = dataset.encode(vocab, max_length=5, tokenizer=tokenizer)
        np.testing.assert_array_equal(ids, ids_d)
        np.testing.assert_array_equal(mask, mask_d)
