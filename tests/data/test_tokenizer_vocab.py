"""Tokenizers and the vocabulary."""

import pytest

from repro.data import CharNGramTokenizer, Vocabulary, WhitespaceTokenizer


class TestWhitespaceTokenizer:
    def test_basic_split(self):
        assert WhitespaceTokenizer()("Hello  WORLD foo") == ["hello", "world", "foo"]

    def test_no_lowercase(self):
        assert WhitespaceTokenizer(lowercase=False)("Hello World") == ["Hello", "World"]

    def test_max_length(self):
        assert WhitespaceTokenizer(max_length=2)("a b c d") == ["a", "b"]

    def test_empty_string(self):
        assert WhitespaceTokenizer()("") == []


class TestCharNGramTokenizer:
    def test_trigram(self):
        assert CharNGramTokenizer(n=3)("abcd") == ["abc", "bcd"]

    def test_short_text(self):
        assert CharNGramTokenizer(n=5)("ab") == ["ab"]
        assert CharNGramTokenizer(n=3)("") == []

    def test_whitespace_removed(self):
        assert CharNGramTokenizer(n=2)("a b") == ["ab"]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            CharNGramTokenizer(n=0)


class TestVocabulary:
    def test_reserved_tokens(self):
        vocab = Vocabulary()
        assert len(vocab) == 2
        assert vocab.pad_id == 0 and vocab.unk_id == 1
        assert vocab.id_to_token(0) == Vocabulary.PAD_TOKEN

    def test_build_orders_by_frequency(self):
        vocab = Vocabulary(["b", "a", "a", "a", "b", "c"])
        assert vocab.token_to_id("a") == 2
        assert vocab.token_to_id("b") == 3
        assert vocab.token_to_id("c") == 4

    def test_min_freq_filters(self):
        vocab = Vocabulary(["a", "a", "b"], min_freq=2)
        assert "a" in vocab and "b" not in vocab

    def test_max_size(self):
        vocab = Vocabulary(list("aaabbc"), max_size=3)
        assert len(vocab) == 3

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary(["known"])
        assert vocab.token_to_id("missing") == vocab.unk_id
        assert vocab.id_to_token(9999) == Vocabulary.UNK_TOKEN

    def test_encode_truncate_and_pad(self):
        vocab = Vocabulary(["a", "b", "c"])
        ids = vocab.encode(["a", "b", "c", "a"], max_length=6, pad=True)
        assert len(ids) == 6
        assert ids[-1] == vocab.pad_id
        assert vocab.encode(["a", "b", "c"], max_length=2) == vocab.encode(["a", "b"])

    def test_decode_strips_padding(self):
        vocab = Vocabulary(["x", "y"])
        ids = vocab.encode(["x", "y"], max_length=4, pad=True)
        assert vocab.decode(ids) == ["x", "y"]
        assert len(vocab.decode(ids, strip_pad=False)) == 4

    def test_from_documents(self):
        vocab = Vocabulary.from_documents([["a", "b"], ["b", "c"]])
        assert all(token in vocab for token in "abc")

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("tok")
        second = vocab.add("tok")
        assert first == second
