"""NewsItem / MultiDomainNewsDataset containers and stratified splitting."""

import numpy as np
import pytest

from repro.data import (
    FAKE_LABEL,
    REAL_LABEL,
    MultiDomainNewsDataset,
    NewsItem,
    Vocabulary,
    stratified_split,
)


class TestNewsItem:
    def test_tokens(self):
        item = NewsItem(text="Alpha beta GAMMA", label=1, domain=0)
        assert item.tokens() == ["alpha", "beta", "gamma"]

    def test_metadata_default(self):
        item = NewsItem(text="x", label=0, domain=0)
        assert item.metadata == {}


class TestDataset:
    def test_basic_accessors(self, manual_dataset):
        assert len(manual_dataset) == 7
        assert manual_dataset.num_domains == 2
        assert manual_dataset[0].domain_name == "sports"
        np.testing.assert_array_equal(np.sort(np.unique(manual_dataset.labels)), [0, 1])
        assert manual_dataset.domains.sum() == 3  # three tech items

    def test_invalid_domain_rejected(self):
        items = [NewsItem(text="x", label=0, domain=5)]
        with pytest.raises(ValueError):
            MultiDomainNewsDataset(items, ["only"])

    def test_invalid_label_rejected(self):
        items = [NewsItem(text="x", label=7, domain=0)]
        with pytest.raises(ValueError):
            MultiDomainNewsDataset(items, ["only"])

    def test_subset_and_filter_domain(self, manual_dataset):
        subset = manual_dataset.subset([0, 1, 4])
        assert len(subset) == 3
        tech = manual_dataset.filter_domain("tech")
        assert len(tech) == 3
        assert all(item.domain_name == "tech" for item in tech)
        by_index = manual_dataset.filter_domain(0)
        assert len(by_index) == 4

    def test_build_vocabulary_and_encode(self, manual_dataset):
        vocab = manual_dataset.build_vocabulary()
        token_ids, mask = manual_dataset.encode(vocab, max_length=5)
        assert token_ids.shape == (7, 5)
        assert mask.shape == (7, 5)
        assert mask[0].sum() == 3  # three tokens in the first item
        assert (token_ids[mask == 0] == vocab.pad_id).all()

    def test_summary_counts(self, manual_dataset):
        summary = manual_dataset.summary()
        assert summary["domains"]["sports"]["fake"] == 2
        assert summary["domains"]["tech"]["real"] == 2
        assert summary["size"] == 7


class TestStratifiedSplit:
    def test_fractions_and_disjointness(self, tiny_dataset):
        splits = stratified_split(tiny_dataset, train_fraction=0.6, val_fraction=0.2, seed=1)
        total = len(splits.train) + len(splits.val) + len(splits.test)
        assert total == len(tiny_dataset)
        ids = [item.item_id for split in (splits.train, splits.val, splits.test)
               for item in split]
        assert len(ids) == len(set(ids))
        assert abs(len(splits.train) / total - 0.6) < 0.08

    def test_every_domain_in_every_split(self, tiny_dataset):
        splits = stratified_split(tiny_dataset, seed=2)
        for split in (splits.train, splits.test):
            assert set(np.unique(split.domains)) == set(range(tiny_dataset.num_domains))

    def test_fake_ratio_preserved(self, tiny_dataset):
        splits = stratified_split(tiny_dataset, seed=3)
        overall = tiny_dataset.labels.mean()
        assert abs(splits.train.labels.mean() - overall) < 0.1
        assert abs(splits.test.labels.mean() - overall) < 0.1

    def test_deterministic_given_seed(self, tiny_dataset):
        a = stratified_split(tiny_dataset, seed=5)
        b = stratified_split(tiny_dataset, seed=5)
        assert [i.item_id for i in a.train] == [i.item_id for i in b.train]

    def test_invalid_fractions(self, tiny_dataset):
        with pytest.raises(ValueError):
            stratified_split(tiny_dataset, train_fraction=0.0)
        with pytest.raises(ValueError):
            stratified_split(tiny_dataset, train_fraction=0.8, val_fraction=0.3)

    def test_sizes_helper(self, tiny_dataset):
        splits = stratified_split(tiny_dataset, seed=0)
        sizes = splits.sizes()
        assert sizes["train"] == len(splits.train)
        assert set(sizes) == {"train", "val", "test"}
