"""DataLoader batching, feature channels and deterministic evaluation order."""

import numpy as np
import pytest

from repro.data import DataLoader


class TestDataLoader:
    def test_batch_shapes(self, train_loader):
        batch = next(iter(train_loader))
        assert batch.token_ids.shape[1] == train_loader.max_length
        assert batch.mask.shape == batch.token_ids.shape
        assert len(batch) == batch.labels.shape[0] == batch.domains.shape[0]

    def test_number_of_batches(self, train_loader):
        assert len(train_loader) == int(np.ceil(len(train_loader.dataset) / train_loader.batch_size))
        assert sum(len(b) for b in train_loader) == len(train_loader.dataset)

    def test_feature_channels_present(self, sample_batch):
        plm = sample_batch.feature("plm")
        assert plm.shape == (*sample_batch.token_ids.shape, 16)
        assert sample_batch.feature("style").shape[0] == len(sample_batch)
        assert sample_batch.feature("emotion").shape[0] == len(sample_batch)

    def test_missing_feature_raises(self, sample_batch):
        with pytest.raises(KeyError):
            sample_batch.feature("nonexistent")

    def test_full_batch_covers_dataset(self, val_loader):
        batch = val_loader.full_batch()
        assert len(batch) == len(val_loader.dataset)

    def test_iter_eval_is_deterministic_and_ordered(self, test_loader):
        first = np.concatenate([b.indices for b in test_loader.iter_eval()])
        second = np.concatenate([b.indices for b in test_loader.iter_eval()])
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(first, np.arange(len(test_loader.dataset)))

    def test_shuffle_changes_order_between_epochs(self, tiny_splits, tiny_vocab, feature_extractors):
        loader = DataLoader(tiny_splits.train, tiny_vocab, max_length=16, batch_size=16,
                            shuffle=True, seed=1, feature_extractors=feature_extractors)
        first = np.concatenate([b.indices for b in loader])
        second = np.concatenate([b.indices for b in loader])
        assert not np.array_equal(first, second)
        np.testing.assert_array_equal(np.sort(first), np.sort(second))

    def test_labels_and_domains_match_dataset(self, val_loader):
        batch = val_loader.full_batch()
        np.testing.assert_array_equal(batch.labels, val_loader.dataset.labels)
        np.testing.assert_array_equal(batch.domains, val_loader.dataset.domains)

    def test_mask_consistent_with_padding(self, sample_batch):
        padded = sample_batch.token_ids == 0
        assert (sample_batch.mask[padded] == 0).all()

    def test_invalid_batch_size(self, tiny_splits, tiny_vocab):
        with pytest.raises(ValueError):
            DataLoader(tiny_splits.train, tiny_vocab, batch_size=0)

    def test_bad_feature_extractor_shape_rejected(self, tiny_splits, tiny_vocab):
        def broken(items, token_ids, mask):
            return np.zeros((3, 2))

        with pytest.raises(ValueError):
            DataLoader(tiny_splits.train, tiny_vocab, feature_extractors={"broken": broken})
