"""JSON result serialisation and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.experiments.io import load_results, report_to_dict, results_to_json, save_results
from repro.metrics import evaluate_predictions


def _report():
    y_true = np.array([1, 0, 1, 0, 1, 0])
    y_pred = np.array([1, 0, 0, 0, 1, 1])
    domains = np.array([0, 0, 1, 1, 2, 2])
    return evaluate_predictions(y_true, y_pred, domains, ["a", "b", "c"], model_name="toy")


class TestResultsIO:
    def test_report_to_dict_contains_error_rates(self):
        payload = report_to_dict(_report())
        assert set(payload["fnr_per_domain"]) == {"a", "b", "c"}
        assert payload["model"] == "toy"

    def test_results_to_json_handles_nested_structures(self):
        blob = results_to_json({"rows": {"toy": _report()}, "values": [np.float64(0.5)]})
        parsed = json.loads(blob)
        assert parsed["rows"]["toy"]["f1"] == pytest.approx(_report().overall_f1)
        assert parsed["values"][0] == 0.5

    def test_save_and_load_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "results.json"
        save_results({"toy": _report()}, path)
        loaded = load_results(path)
        assert loaded["toy"]["total"] == pytest.approx(_report().total)

    def test_numpy_arrays_serialised_as_lists(self):
        parsed = json.loads(results_to_json({"array": np.arange(3)}))
        assert parsed["array"] == [0, 1, 2]


class TestCLI:
    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("stats", "audit", "compare", "ablation", "case-study"):
            assert command in text

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_stats_command_runs_and_saves(self, tmp_path, capsys):
        output = tmp_path / "stats.json"
        code = main(["stats", "--dataset", "chinese", "--scale", "0.05",
                     "--output", str(output)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "science" in captured and "%Fake" in captured
        assert output.exists()
        assert load_results(output)["statistics"]["total"] > 0

    def test_compare_command_small_subset(self, tmp_path, capsys):
        output = tmp_path / "compare.json"
        code = main(["compare", "--dataset", "chinese", "--scale", "0.05",
                     "--epochs", "1", "--baselines", "bert", "--no-dtdbd",
                     "--output", str(output)])
        assert code == 0
        assert "BERT" in capsys.readouterr().out
        loaded = load_results(output)
        assert "bert" in loaded and "f1" in loaded["bert"]


class TestServeCLI:
    def test_parser_has_serving_subcommands(self):
        text = build_parser().format_help()
        assert "export" in text and "predict" in text

    def test_export_then_predict_fresh_process_state(self, tmp_path, capsys):
        """`export` writes an artifact that `predict` can serve with no shared state."""
        artifact = tmp_path / "detector"
        code = main(["export", "--dataset", "chinese", "--scale", "0.05",
                     "--epochs", "1", "--out", str(artifact)])
        assert code == 0
        assert "exported baseline" in capsys.readouterr().out
        assert (artifact / "manifest.json").exists()
        assert (artifact / "weights.npz").exists()
        assert (artifact / "vocab.json").exists()

        output = tmp_path / "predictions.json"
        code = main(["predict", "--pipeline", str(artifact),
                     "--text", "breaking dom3_topic17 fake_sig_2 emo_arousal_high",
                     "--text", "calm dom0_topic2 common_word report",
                     "--domain", "science", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "p(fake)=" in out and "science" in out
        predictions = load_results(output)
        assert len(predictions) == 2
        for row in predictions:
            assert row["label_name"] in ("real", "fake")
            assert 0.0 <= row["probability_fake"] <= 1.0
            assert row["domain"] == "science"

    def test_predict_requires_texts(self, tmp_path, capsys):
        assert main(["predict", "--pipeline", str(tmp_path)]) == 2
        assert "no texts" in capsys.readouterr().err

    def test_predict_rejects_unknown_domain_cleanly(self, tmp_path, capsys):
        artifact = tmp_path / "detector"
        main(["export", "--dataset", "chinese", "--scale", "0.05",
              "--epochs", "1", "--out", str(artifact)])
        capsys.readouterr()
        code = main(["predict", "--pipeline", str(artifact),
                     "--text", "x", "--domain", "galactic"])
        assert code == 2
        assert "unknown domain" in capsys.readouterr().err

    def test_predict_reads_input_file(self, tmp_path, capsys):
        artifact = tmp_path / "detector"
        main(["export", "--dataset", "chinese", "--scale", "0.05",
              "--epochs", "1", "--out", str(artifact)])
        capsys.readouterr()
        corpus = tmp_path / "corpus.txt"
        corpus.write_text("first item text\n\nsecond item text\n")
        assert main(["predict", "--pipeline", str(artifact),
                     "--input", str(corpus)]) == 0
        assert capsys.readouterr().out.count("p(fake)=") == 2
