"""Integration tests of the experiment runner at tiny scale.

These are the slowest tests of the suite (each trains several small models for
two epochs); they check that every table/figure pipeline runs end to end and
produces structurally correct results.
"""

import numpy as np
import pytest

from repro.experiments import (
    fast_test_config,
    prepare_data,
    run_comparison,
    run_figure3_case_study,
    run_table3,
    run_table8_ablation,
    run_table9_dat_comparison,
    train_baseline,
    train_dtdbd_student,
    train_unbiased,
)


@pytest.fixture(scope="module")
def config():
    return fast_test_config()


@pytest.fixture(scope="module")
def bundle(config):
    return prepare_data(config)


class TestPrepareData:
    def test_bundle_structure(self, bundle, config):
        assert bundle.num_domains == 9
        assert set(bundle.feature_extractors) == {"plm", "style", "emotion"}
        assert len(bundle.splits.train) > len(bundle.splits.val)
        assert bundle.model_config().plm_dim == config.plm_dim

    def test_english_dataset(self):
        english = prepare_data(fast_test_config("english"))
        assert english.num_domains == 3

    def test_unknown_dataset_rejected(self, config):
        with pytest.raises(ValueError):
            prepare_data(config.with_overrides(dataset="german"))

    def test_dtype_policy_applied_end_to_end(self, config):
        """``dtype="float32"`` (REPRO_DTYPE) must reach loaders and models."""
        from repro.experiments import train_baseline
        from repro.tensor import set_default_dtype

        try:
            float_bundle = prepare_data(config.with_overrides(dtype="float32"))
            batch = next(iter(float_bundle.train_loader))
            assert batch.feature("plm").dtype == np.float32
            model, report = train_baseline("bigru", float_bundle, epochs=1)
            assert all(p.dtype == np.float32 for p in model.parameters())
            assert 0.0 <= report.overall_f1 <= 1.0
        finally:
            set_default_dtype("float64")

    def test_invalid_dtype_rejected(self, config):
        from repro.tensor import set_default_dtype

        try:
            with pytest.raises(ValueError):
                prepare_data(config.with_overrides(dtype="float16"))
        finally:
            set_default_dtype("float64")


class TestSinglePipelines:
    def test_train_baseline(self, bundle):
        model, report = train_baseline("bert", bundle)
        assert report.model == "bert"
        assert 0.0 <= report.overall_f1 <= 1.0

    def test_train_unbiased_and_dtdbd(self, bundle):
        unbiased, unbiased_report = train_unbiased(bundle)
        clean, _ = train_baseline("mdfend", bundle, seed_offset=9)
        student, report, trainer = train_dtdbd_student(bundle, unbiased, clean)
        assert 0.0 <= report.overall_f1 <= 1.0
        assert len(trainer.weight_history) >= 2
        assert unbiased_report.model.endswith("dat-ie")


class TestTablePipelines:
    def test_run_comparison_subset(self, config, bundle):
        reports = run_comparison(config, baselines=("bert", "mdfend"), bundle=bundle)
        assert {"bert", "mdfend", "our_md", "our_m3"} == set(reports)
        for report in reports.values():
            assert report.total >= 0.0

    def test_run_table3(self, config, bundle):
        audit = run_table3(config, models=("eann", "mdfend"), bundle=bundle)
        assert {row.model for row in audit.rows} == {"eann", "mdfend"}
        summary = audit.skew_summary()
        assert "eann" in summary

    def test_run_table8(self, config, bundle):
        results = run_table8_ablation(config, student_names=("textcnn_s",), bundle=bundle)
        rows = results["textcnn_s"]
        assert set(rows) == {"student", "student+dat_ie", "teacher_m3", "student+dnd",
                             "student+add", "wo_daa", "dtdbd"}

    def test_run_table9(self, config, bundle):
        results = run_table9_dat_comparison(config, student_names=("textcnn_s",), bundle=bundle)
        assert set(results["textcnn_s"]) == {"student", "student+dat", "student+dat_ie"}

    def test_run_figure3(self, config, bundle):
        rows = run_figure3_case_study(config, bundle=bundle)
        assert len(rows) == 3
        for row in rows:
            assert {p.model for p in row.predictions} == {"m3fend", "mdfend", "dtdbd"}


class TestExportPipeline:
    def test_bundle_trained_model_round_trips(self, bundle, tmp_path):
        from repro.experiments import export_pipeline
        from repro.serve import load_pipeline

        model, _ = train_baseline(bundle.config.student_name, bundle, epochs=1)
        path = export_pipeline(model, bundle, tmp_path / "artifact")
        pipeline = load_pipeline(path)
        assert pipeline.model_name == bundle.config.student_name
        assert pipeline.max_length == bundle.config.max_length
        assert pipeline.domain_names == bundle.dataset.domain_names
        assert pipeline.metadata["dataset"] == bundle.config.dataset
        assert pipeline.metadata["seed"] == bundle.config.seed
        # serving probabilities == training-loader probabilities for the same rows
        items = bundle.splits.test.items[: bundle.config.batch_size]
        loader_like = bundle.test_loader.window(0, len(items))
        expected = model.predict_proba(loader_like)
        observed = pipeline.predictor().predict_proba(
            [item.text for item in items],
            domains=[item.domain for item in items])
        np.testing.assert_array_equal(observed, expected)

    def test_databundle_method_matches_function(self, bundle, tmp_path):
        from repro.serve import load_pipeline

        model, _ = train_baseline(bundle.config.student_name, bundle, epochs=1)
        path = bundle.export_pipeline(model, tmp_path / "via_method")
        assert load_pipeline(path).model_name == bundle.config.student_name
