"""Experiment configuration and table formatting."""

import numpy as np
import pytest

from repro.experiments import (
    FUNCTIONAL_COMPARISON,
    default_chinese_config,
    default_english_config,
    fast_test_config,
    format_bias_audit,
    format_case_study,
    format_compact_table,
    format_comparison_table,
    format_dataset_statistics,
    format_functional_comparison,
    format_mixing_scores,
)
from repro.analysis.bias_analysis import BiasAudit, DomainErrorRates
from repro.analysis.case_study import CasePrediction, CaseStudyRow
from repro.data import dataset_statistics_table
from repro.metrics import evaluate_predictions


class TestConfigs:
    def test_default_chinese(self):
        config = default_chinese_config()
        assert config.dataset == "chinese"
        assert config.dat.epochs == config.epochs
        assert config.trainer_config().epochs == config.epochs

    def test_default_english(self):
        config = default_english_config()
        assert config.dataset == "english"
        assert config.scale < 0.3

    def test_fast_test_config_is_small(self):
        config = fast_test_config()
        assert config.epochs <= 2
        assert config.scale <= 0.05

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.77")
        monkeypatch.setenv("REPRO_EPOCHS", "3")
        config = default_chinese_config()
        assert config.scale == pytest.approx(0.77)
        assert config.epochs == 3

    def test_dtype_defaults_to_float64(self):
        assert default_chinese_config().dtype == "float64"
        assert default_english_config().dtype == "float64"

    def test_repro_dtype_env_selects_float32(self, monkeypatch):
        monkeypatch.setenv("REPRO_DTYPE", "float32")
        assert default_chinese_config().dtype == "float32"
        assert default_english_config().dtype == "float32"

    def test_with_overrides(self):
        config = default_chinese_config().with_overrides(scale=0.5, max_length=10)
        assert config.scale == 0.5 and config.max_length == 10


def _fake_report(name, f1=0.9):
    rng = np.random.default_rng(0)
    y_true = rng.integers(0, 2, 60)
    y_pred = y_true.copy()
    y_pred[:6] = 1 - y_pred[:6]
    domains = rng.integers(0, 3, 60)
    return evaluate_predictions(y_true, y_pred, domains, ["a", "b", "c"], model_name=name)


class TestFormatting:
    def test_comparison_table_contains_all_rows_and_columns(self):
        reports = {"m3fend": _fake_report("m3fend"), "our_m3": _fake_report("ours")}
        text = format_comparison_table(reports, ["a", "b", "c"], title="Table VI")
        assert "Table VI" in text
        assert "M3FEND" in text and "Our(M3)" in text
        assert "FNED" in text and "Total" in text

    def test_compact_table(self):
        text = format_compact_table({"student": _fake_report("s")}, title="Table VIII")
        assert "student" in text and "F1" in text

    def test_bias_audit_formatting(self):
        audit = BiasAudit(rows=[DomainErrorRates("eann", "disaster", 0.1, 0.3),
                                DomainErrorRates("eann", "finance", 0.4, 0.05)])
        text = format_bias_audit(audit)
        assert "EANN" in text and "disaster-FNR" in text

    def test_dataset_statistics_formatting(self, tiny_dataset):
        text = format_dataset_statistics(dataset_statistics_table(tiny_dataset))
        assert "science" in text and "%Fake" in text

    def test_case_study_formatting(self):
        rows = [CaseStudyRow(description="probe", domain="politics", true_label=0,
                             expected_bias="...", predictions=[
                                 CasePrediction("dtdbd", 0.8, 0, True),
                                 CasePrediction("mdfend", 0.4, 1, False)])]
        text = format_case_study(rows)
        assert "politics" in text and "WRONG" in text and "correct" in text

    def test_mixing_scores_formatting(self):
        text = format_mixing_scores({"m3fend": {"mixing_score": 0.5},
                                     "dtdbd": {"mixing_score": 0.7}})
        assert "m3fend" in text and "0.7" in text

    def test_functional_comparison_contains_ours(self):
        text = format_functional_comparison()
        assert "DTDBD (ours)" in text
        assert FUNCTIONAL_COMPARISON["DTDBD (ours)"]["bias_type"] == "Domain"
        assert "Domain" in text
