"""The ``sweep`` CLI subcommand: listing, journaling, resume and exit codes."""

import json
import os

from repro.cli import build_parser, main


class TestSweepCli:
    def test_parser_has_sweep_subcommand(self):
        args = build_parser().parse_args(
            ["sweep", "--tables", "table2", "--jobs", "0"])
        assert args.handler.__name__ == "cmd_sweep"
        assert args.jobs == 0 and args.tables == ["table2"]

    def test_sweep_list_names_every_cell(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table5", "fig3"):
            assert name in out
        assert "benchmarks/results/" in out

    def test_sweep_unknown_table_fails_readably(self, capsys):
        assert main(["sweep", "--tables", "table99", "--jobs", "0"]) == 2
        assert "table99" in capsys.readouterr().err

    def test_sweep_serial_journal_resume_and_results_dir(self, tmp_path, capsys):
        journal = tmp_path / "journal"
        results_dir = tmp_path / "results"
        argv = ["sweep", "--tables", "table2", "--jobs", "0",
                "--journal", str(journal), "--results-dir", str(results_dir)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "ok   table2" in out
        written = results_dir / "table2_functional_matrix.txt"
        assert written.exists()
        assert "functional comparison" in written.read_text(encoding="utf-8")

        # same journal without --resume is refused with a one-line error
        assert main(argv) == 2
        captured = capsys.readouterr()
        assert "already exists" in captured.err

        # --resume reuses the journaled result instead of re-running
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "journaled result reused" in out

    def test_sweep_output_saves_results_json(self, tmp_path, capsys):
        target = tmp_path / "sweep.json"
        assert main(["sweep", "--tables", "table2", "--jobs", "0",
                     "--output", str(target)]) == 0
        capsys.readouterr()
        with open(target, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["table2"]["output"] == "table2_functional_matrix"
