"""``record_bench`` must be safe under concurrent writers.

Parallel sweep cells (and the perf lanes racing an orchestrator run) merge
into the same ``BENCH_<suite>.json``.  Before the advisory lock, two writers
could read the same baseline, merge disjoint entries, and the second atomic
replace silently dropped the first writer's rows.  The regression test here
hammers one record from several processes and asserts no entry is lost.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
BENCH_DIR = os.path.join(REPO_ROOT, "benchmarks")

WRITER_SCRIPT = """\
import json, os, sys
sys.path.insert(0, {bench_dir!r})
import _bench_utils
_bench_utils.REPO_ROOT = {record_dir!r}
tag = sys.argv[1]
for i in range(20):
    _bench_utils.record_bench("locktest",
                              [{{"name": f"{{tag}}_{{i}}", "value": i}}])
"""


def _load_utils():
    sys.path.insert(0, BENCH_DIR)
    try:
        import _bench_utils
    finally:
        sys.path.remove(BENCH_DIR)
    return _bench_utils


def test_record_bench_merges_and_replaces_by_name(tmp_path, monkeypatch):
    utils = _load_utils()
    monkeypatch.setattr(utils, "REPO_ROOT", str(tmp_path))
    path = utils.record_bench("unit", [{"name": "a", "value": 1},
                                       {"name": "b", "value": 2}])
    utils.record_bench("unit", [{"name": "a", "value": 10}])
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    entries = {entry["name"]: entry for entry in payload["entries"]}
    assert entries["a"]["value"] == 10  # same-name entry replaced, not duplicated
    assert entries["b"]["value"] == 2   # unrelated entry preserved
    assert payload["suite"] == "unit"
    # merge=False starts the record over
    utils.record_bench("unit", [{"name": "c", "value": 3}], merge=False)
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert [entry["name"] for entry in payload["entries"]] == ["c"]


def test_record_bench_concurrent_writers_lose_no_entries(tmp_path):
    utils = _load_utils()
    if getattr(utils, "fcntl", None) is None:
        pytest.skip("advisory locking unavailable on this platform")
    script = tmp_path / "writer.py"
    script.write_text(WRITER_SCRIPT.format(bench_dir=BENCH_DIR,
                                           record_dir=str(tmp_path)),
                      encoding="utf-8")
    tags = ("alpha", "beta", "gamma")
    writers = [subprocess.Popen([sys.executable, str(script), tag],
                                stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True)
               for tag in tags]
    for writer in writers:
        out, _ = writer.communicate(timeout=120)
        assert writer.returncode == 0, f"writer failed:\n{out}"

    with open(tmp_path / "BENCH_locktest.json", "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    names = {entry["name"] for entry in payload["entries"]}
    expected = {f"{tag}_{i}" for tag in tags for i in range(20)}
    missing = expected - names
    assert not missing, (
        f"concurrent merges lost {len(missing)} entries: {sorted(missing)[:5]}")
