"""End-to-end streaming narrative and replay determinism.

The narrative: a seeded event stream drifts (one domain's style and labels
shift), the monitor fires, the adapter fine-tunes on buffered feedback and
hot-reloads the predictor; later a never-seen domain arrives, is onboarded
bit-identically for the old domains, warmed up from few-shot labels, and
served.  Replaying the same schedule reproduces the drift log byte for byte
and the final weights bit for bit — in both dtype policies.
"""

import numpy as np
import pytest

from streaming_helpers import DTYPES, build_stack

from repro.experiments import StreamScheduleConfig, generate_stream_schedule
from repro.streaming import StreamEvent, StreamRunner, StreamConfig, DriftMonitor, DriftConfig
from repro.tensor import default_dtype

SCHEDULE = StreamScheduleConfig(scale=0.03, seed=2024, seed_events=48,
                                drift_events=48, novel_events=12,
                                novel_labeled=6)


@pytest.fixture(scope="module")
def schedule():
    events, _metadata = generate_stream_schedule(SCHEDULE)
    return events


class TestNarrative:
    def test_drift_adapt_onboard_serve(self, schedule, tmp_path):
        """The full continual-learning story on a distilled student."""
        runner = build_stack("float64", str(tmp_path / "artifact"),
                            distilled=True)
        with default_dtype("float64"):
            report = runner.run(schedule)

        # Every event was served: none failed, none skipped (the unknown
        # domain was onboarded, not dropped).
        assert report.events == len(schedule)
        assert report.served == len(schedule)
        assert report.failed == 0
        assert report.skipped_unknown_domain == 0

        # Act 1 — the induced drift was noticed...
        assert report.drift_events, "monitor never fired on the drift phase"
        kinds = {event["kind"] for event in report.drift_events}
        assert kinds <= {"score_drift", "bias_drift"}

        # ...and answered with at least one incremental fine-tune + reload.
        assert report.adaptations
        assert runner.predictor.reloads >= len(report.adaptations)

        # Act 2 — the novel domain was onboarded exactly once, warmed up from
        # its few-shot labels, and actually served traffic.
        assert len(report.onboardings) == 1
        onboarding = report.onboardings[0]
        assert onboarding["domain"] == SCHEDULE.novel_domain
        assert onboarding["num_domains"] == 10
        assert any("onboard_warmup" in record["reason"]
                   for record in report.adaptations)
        assert report.served_by_domain[SCHEDULE.novel_domain] > 0

        # The teachers grew alongside the student.
        assert runner.adapter.unbiased_teacher.config.num_domains == 10
        assert runner.adapter.clean_teacher.config.num_domains == 10

        # The report's fingerprint is the live artifact's fingerprint, and is
        # what the predictor last hot-reloaded.
        assert report.final_fingerprint == runner.adapter.pipeline.fingerprint()
        assert runner.predictor.last_reload_fingerprint == report.final_fingerprint

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_replay_is_deterministic(self, dtype, schedule, tmp_path):
        """Same seed + same schedule ⇒ byte-identical drift logs, identical
        adaptation trajectory, bit-identical final weights."""
        reports, models = [], []
        for replay in ("first", "second"):
            runner = build_stack(dtype, str(tmp_path / replay))
            with default_dtype(dtype):
                reports.append(runner.run(schedule))
            models.append(runner.adapter.pipeline.model)
        first, second = reports
        assert first.drift_log == second.drift_log
        assert first.adaptations == second.adaptations
        assert first.onboardings == second.onboardings
        assert first.served_by_domain == second.served_by_domain
        assert first.final_fingerprint == second.final_fingerprint
        state_a, state_b = (model.state_dict() for model in models)
        assert state_a.keys() == state_b.keys()
        for key in state_a:
            np.testing.assert_array_equal(state_a[key], state_b[key])


class TestRunnerEdges:
    def test_out_of_order_ordinals_rejected(self, tmp_path):
        runner = build_stack("float64", str(tmp_path / "artifact"))
        events = [StreamEvent(ordinal=5, text="a", domain="health"),
                  StreamEvent(ordinal=5, text="b", domain="health")]
        with pytest.raises(ValueError, match="strictly increasing"):
            runner.run(events)

    def test_unknown_domain_skipped_without_adapter(self, tmp_path):
        runner = build_stack("float64", str(tmp_path / "artifact"))
        monitor = DriftMonitor(
            runner.predictor.pipeline.domain_names,
            DriftConfig(window=16, min_window=8, reference_size=8,
                        min_labeled=8))
        passive = StreamRunner(runner.predictor, monitor, adapter=None,
                               config=StreamConfig(max_batch=4))
        events = [StreamEvent(ordinal=0, text="known", domain="health"),
                  StreamEvent(ordinal=1, text="novel", domain="crypto"),
                  StreamEvent(ordinal=2, text="known too", domain="health")]
        with default_dtype("float64"):
            report = passive.run(events)
        assert report.served == 2
        assert report.skipped_unknown_domain == 1
        assert report.onboardings == []
        assert "crypto" not in report.served_by_domain

    def test_stream_config_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            StreamConfig(max_batch=0)
        with pytest.raises(ValueError, match="warmup_min_labeled"):
            StreamConfig(warmup_min_labeled=0)


class TestScheduleGenerator:
    def test_three_phase_structure(self, schedule):
        assert len(schedule) == (SCHEDULE.seed_events + SCHEDULE.drift_events
                                 + SCHEDULE.novel_events)
        ordinals = [event.ordinal for event in schedule]
        assert ordinals == sorted(set(ordinals))
        phases = {event.metadata.get("phase") for event in schedule}
        assert phases == {"seed", "drift", "novel"}
        novel = [event for event in schedule
                 if event.domain == SCHEDULE.novel_domain]
        assert len(novel) == SCHEDULE.novel_events
        labeled_novel = [event for event in novel if event.label is not None]
        assert len(labeled_novel) >= SCHEDULE.novel_labeled

    def test_generation_is_seed_deterministic(self):
        again, _ = generate_stream_schedule(SCHEDULE)
        assert again == generate_stream_schedule(SCHEDULE)[0]
        shifted, _ = generate_stream_schedule(
            StreamScheduleConfig(scale=0.03, seed=2025, seed_events=48,
                                 drift_events=48, novel_events=12,
                                 novel_labeled=6))
        assert shifted != again
