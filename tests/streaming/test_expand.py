"""Domain-axis expansion: bit-identical old domains, donor-cloned new ones."""

import dataclasses

import numpy as np
import pytest

from streaming_helpers import DTYPES, build_pipeline, corpus, ring_loader, small_config

from repro.models import build_model, expand_domains
from repro.serve import load_pipeline, save_pipeline
from repro.tensor import default_dtype


def _probe_batch(pipeline, rows=16):
    return ring_loader(pipeline, rows=rows).window(0, rows)


def _with_domains(batch, domain_index):
    return dataclasses.replace(
        batch, domains=np.full_like(batch.domains, domain_index))


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("name", ("mdfend", "eann", "eddfn"))
class TestExpandParameterised:
    def test_old_domain_predictions_bit_identical(self, name, dtype):
        pipeline = build_pipeline(dtype, name)
        model = pipeline.model
        batch = _probe_batch(pipeline)
        with default_dtype(dtype):
            before = model.predict_proba(batch)
            grown = expand_domains(model, 10)
            after = model.predict_proba(batch)
        assert grown, f"{name} has domain-indexed parameters to grow"
        assert model.config.num_domains == 10
        np.testing.assert_array_equal(after, before)

    def test_expanded_model_round_trips_through_artifact(self, name, dtype,
                                                         tmp_path):
        pipeline = build_pipeline(dtype, name)
        batch = _probe_batch(pipeline)
        with default_dtype(dtype):
            expand_domains(pipeline.model, 10)
            pipeline.model_config = pipeline.model.config
            pipeline.domain_names.append("crypto")
            expected = pipeline.model.predict_proba(batch)
            loaded = load_pipeline(save_pipeline(pipeline, tmp_path / "a"))
            restored = loaded.model.predict_proba(batch)
        assert loaded.model_config.num_domains == 10
        assert loaded.domain_names[-1] == "crypto"
        np.testing.assert_array_equal(restored, expected)


@pytest.mark.parametrize("dtype", DTYPES)
class TestExpandBehaviour:
    def test_new_domain_is_a_donor_clone(self, dtype):
        """MDFEND consumes the domain id as input: the onboarded domain must
        start as an exact behavioural copy of the donor."""
        pipeline = build_pipeline(dtype, "mdfend")
        model = pipeline.model
        batch = _probe_batch(pipeline)
        with default_dtype(dtype):
            expand_domains(model, 10, donor=2)
            donor_probs = model.predict_proba(_with_domains(batch, 2))
            new_probs = model.predict_proba(_with_domains(batch, 9))
        np.testing.assert_array_equal(new_probs, donor_probs)

    def test_domain_free_student_expands_config_only(self, dtype):
        pipeline = build_pipeline(dtype, "textcnn_s")
        model = pipeline.model
        batch = _probe_batch(pipeline)
        with default_dtype(dtype):
            before = model.predict_proba(batch)
            grown = expand_domains(model, 10)
            after = model.predict_proba(batch)
        assert grown == []
        assert model.config.num_domains == 10
        np.testing.assert_array_equal(after, before)


class TestExpandErrors:
    def _model(self, name="mdfend"):
        dataset, _ = corpus()
        return build_model(name, small_config(dataset.num_domains))

    def test_m3fend_refuses_expansion(self):
        model = self._model("m3fend")
        with pytest.raises(ValueError, match="does not support bit-identical"):
            expand_domains(model, 10)

    def test_shrinking_rejected(self):
        with pytest.raises(ValueError, match="strictly larger"):
            expand_domains(self._model(), 9)
        with pytest.raises(ValueError, match="strictly larger"):
            expand_domains(self._model(), 4)

    def test_donor_out_of_range(self):
        with pytest.raises(ValueError, match="donor domain"):
            expand_domains(self._model(), 10, donor=9)
        with pytest.raises(ValueError, match="donor domain"):
            expand_domains(self._model(), 10, donor=-1)

    def test_works_on_frozen_teachers(self):
        model = self._model()
        model.freeze()
        grown = expand_domains(model, 10)
        assert grown
        assert model.parameters() == []  # still frozen after expansion

    def test_hidden_layers_matching_domain_count_not_grown(self):
        """An MLP hidden width equal to num_domains must not be mistaken for
        a domain axis — only the head's output layer grows."""
        dataset, _ = corpus()
        config = small_config(dataset.num_domains)
        config = config.with_overrides(mlp_hidden=(dataset.num_domains,))
        model = build_model("eann", config)
        head = model.domain_classifier.network
        layers = [layer for layer in head._modules.values()
                  if hasattr(layer, "out_features")]
        hidden_before = layers[0].weight.data.shape
        expand_domains(model, dataset.num_domains + 1)
        assert layers[0].weight.data.shape == hidden_before
        assert layers[-1].out_features == dataset.num_domains + 1
