"""Ring-buffer writes, incremental adaptation, and continual onboarding."""

import numpy as np
import pytest

from streaming_helpers import (
    DTYPES,
    MAX_LENGTH,
    build_pipeline,
    corpus,
    ring_loader,
)

from repro.data import DataLoader, MultiDomainNewsDataset, NewsItem, StreamWindowBuffer
from repro.encoders import stock_channels
from repro.serve import load_pipeline
from repro.streaming import AdapterConfig, OnlineAdapter
from repro.tensor import default_dtype


def _fresh_items(count, offset=100):
    dataset, _ = corpus()
    return [dataset.items[offset + i] for i in range(count)]


class TestStreamWindowBuffer:
    def test_written_rows_match_construction_time_encoding(self):
        """Rows written through the ring are indistinguishable from rows the
        loader would have produced had it been built over those items."""
        pipeline = build_pipeline("float64")
        loader = ring_loader(pipeline, rows=24)
        items = _fresh_items(24)
        buffer = StreamWindowBuffer(loader)
        touched = buffer.write(items)
        np.testing.assert_array_equal(touched, np.arange(24))

        dataset, vocab = corpus()
        reference = DataLoader(
            MultiDomainNewsDataset(items, domain_names=list(dataset.domain_names)),
            vocab, max_length=MAX_LENGTH, batch_size=16, shuffle=False, seed=0,
            channels=stock_channels(pipeline.encoder))
        np.testing.assert_array_equal(loader.token_ids, reference.token_ids)
        np.testing.assert_array_equal(loader.mask, reference.mask)
        np.testing.assert_array_equal(loader.labels, reference.labels)
        np.testing.assert_array_equal(loader.domains, reference.domains)
        for name in reference.features:
            np.testing.assert_array_equal(loader.features[name],
                                          reference.features[name])
        assert loader.dataset.items == items

    def test_ring_wraps_and_returns_touched_indices(self):
        loader = ring_loader(build_pipeline("float64"), rows=16)
        buffer = StreamWindowBuffer(loader)
        first = buffer.write(_fresh_items(10))
        np.testing.assert_array_equal(first, np.arange(10))
        second = buffer.write(_fresh_items(10, offset=120))
        np.testing.assert_array_equal(
            second, np.array([10, 11, 12, 13, 14, 15, 0, 1, 2, 3]))
        assert buffer.cursor == 4
        assert buffer.written == 20

    def test_empty_write_is_a_noop(self):
        loader = ring_loader(build_pipeline("float64"), rows=16)
        buffer = StreamWindowBuffer(loader)
        touched = buffer.write([])
        assert touched.size == 0
        assert buffer.cursor == 0

    def test_oversized_write_refused(self):
        loader = ring_loader(build_pipeline("float64"), rows=8)
        buffer = StreamWindowBuffer(loader)
        with pytest.raises(ValueError, match="8-row ring"):
            buffer.write(_fresh_items(9))

    def test_invalid_items_refused(self):
        loader = ring_loader(build_pipeline("float64"), rows=8)
        buffer = StreamWindowBuffer(loader)
        with pytest.raises(ValueError, match="invalid label"):
            buffer.write([NewsItem(text="x", label=7, domain=0)])
        with pytest.raises(ValueError, match="outside"):
            buffer.write([NewsItem(text="x", label=1, domain=99)])
        with pytest.raises(TypeError, match="NewsItem"):
            buffer.write(["just a string"])

    def test_requires_channel_built_loader(self, train_loader):
        # The root-conftest loader uses feature_extractors=, which are
        # consumed at construction — rows cannot be recomputed in place.
        with pytest.raises(ValueError, match="channels="):
            StreamWindowBuffer(train_loader)


def _adapter(dtype, export_path, distilled=False, rows=32, **config_kwargs):
    pipeline = build_pipeline(dtype, "textcnn_s")
    loader = ring_loader(pipeline, rows=rows)
    teachers = {}
    if distilled:
        from repro.models import build_model
        from streaming_helpers import small_config

        dataset, _ = corpus()
        with default_dtype(dtype):
            teachers = {
                "unbiased_teacher": build_model(
                    "mdfend", small_config(dataset.num_domains, seed=6)),
                "clean_teacher": build_model(
                    "mdfend", small_config(dataset.num_domains, seed=7)),
            }
    return OnlineAdapter(pipeline, loader,
                         AdapterConfig(export_path=str(export_path),
                                       **config_kwargs), **teachers)


class TestOnlineAdapter:
    def test_initial_export_exists_before_any_traffic(self, tmp_path):
        adapter = _adapter("float64", tmp_path / "artifact")
        loaded = load_pipeline(tmp_path / "artifact")
        assert loaded.fingerprint() == adapter.pipeline.fingerprint()

    def test_adapt_without_feedback_returns_none(self, tmp_path):
        adapter = _adapter("float64", tmp_path / "artifact")
        assert adapter.adapt("score_drift:health", ordinal=10) is None
        assert adapter.adaptations == []

    def test_adapt_trains_and_reexports(self, tmp_path):
        adapter = _adapter("float64", tmp_path / "artifact")
        before = adapter.pipeline.fingerprint()
        for item in _fresh_items(6):
            adapter.ingest(item)
        assert adapter.feedback_count == 6
        record = adapter.adapt("score_drift:health", ordinal=42)
        assert record is not None
        assert record.ordinal == 42
        assert record.items == 6
        assert record.touched_rows == 6
        assert len(record.losses) == record.epochs == 1
        assert record.fingerprint != before
        assert adapter.feedback_count == 0
        # The exported artifact carries exactly the fine-tuned weights.
        loaded = load_pipeline(tmp_path / "artifact")
        assert loaded.fingerprint() == record.fingerprint
        for key, value in loaded.model.state_dict().items():
            np.testing.assert_array_equal(
                value, adapter.pipeline.model.state_dict()[key])

    def test_oversized_feedback_keeps_newest_ring_rows(self, tmp_path):
        adapter = _adapter("float64", tmp_path / "artifact", rows=16)
        for item in _fresh_items(30):
            adapter.ingest(item)
        record = adapter.adapt("feedback", ordinal=0)
        assert record.items == 16  # ring capacity; oldest 14 dropped

    def test_feedback_for_domain_counts_by_name(self, tmp_path):
        adapter = _adapter("float64", tmp_path / "artifact")
        names = adapter.loader.dataset.domain_names
        adapter.ingest(NewsItem(text="x", label=1, domain=0,
                                domain_name=names[0]))
        adapter.ingest(NewsItem(text="y", label=0, domain=1,
                                domain_name=names[1]))
        assert adapter.feedback_for_domain(names[0]) == 1
        assert adapter.feedback_for_domain(names[1]) == 1
        assert adapter.feedback_for_domain("missing") == 0

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_distilled_adapt_invalidates_only_touched_windows(self, dtype,
                                                              tmp_path):
        adapter = _adapter(dtype, tmp_path / "artifact", distilled=True,
                           rows=32)
        # First adaptation materialises the teacher caches from scratch.
        for item in _fresh_items(4):
            adapter.ingest(item)
        adapter.adapt("warmup", ordinal=0)
        caches = [cache for pair in adapter.trainer._teacher_caches.values()
                  for cache in pair if cache is not None]
        assert caches, "DTDBD trainer should have built teacher caches"
        for cache in caches:
            assert cache.materialised
            assert cache.recomputed_windows == 0
        # Second adaptation touches rows 4..7 — one 16-row window of two.
        for item in _fresh_items(4, offset=140):
            adapter.ingest(item)
        adapter.adapt("score_drift:health", ordinal=1)
        for cache in caches:
            assert cache.recomputed_windows == 1

    def test_onboard_domain_end_to_end(self, tmp_path):
        adapter = _adapter("float64", tmp_path / "artifact", distilled=True)
        old_trainer = adapter.trainer
        record = adapter.onboard_domain("crypto", ordinal=77)
        assert record["domain"] == "crypto"
        assert record["domain_index"] == 9
        assert record["num_domains"] == 10
        assert adapter.pipeline.model_config.num_domains == 10
        assert adapter.loader.dataset.domain_names[-1] == "crypto"
        assert adapter.pipeline.domain_names[-1] == "crypto"
        # Both frozen teachers grew with the student.
        assert adapter.unbiased_teacher.config.num_domains == 10
        assert adapter.clean_teacher.config.num_domains == 10
        # Trainer was rebuilt (optimizer moments must match new shapes) with
        # the teacher caches transplanted, not recomputed.
        assert adapter.trainer is not old_trainer
        assert adapter.trainer._teacher_caches is old_trainer._teacher_caches
        # The re-export is loadable and carries the grown domain vocabulary.
        loaded = load_pipeline(tmp_path / "artifact")
        assert loaded.domain_names[-1] == "crypto"
        assert loaded.model_config.num_domains == 10

    def test_onboard_duplicate_domain_rejected(self, tmp_path):
        adapter = _adapter("float64", tmp_path / "artifact")
        existing = adapter.loader.dataset.domain_names[0]
        with pytest.raises(ValueError, match="already exists"):
            adapter.onboard_domain(existing, ordinal=0)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_onboarding_preserves_existing_domain_predictions(self, dtype,
                                                              tmp_path):
        """The narrative's bit-identity pin: after onboarding + hot reload,
        every pre-onboarding domain scores exactly as the pre-expansion
        artifact did."""
        adapter = _adapter(dtype, tmp_path / "artifact")
        pipeline = adapter.pipeline
        dataset, _ = corpus()
        texts = [item.text for item in dataset.items[:12]]
        domains = [item.domain for item in dataset.items[:12]]
        predictor = pipeline.predictor()
        with default_dtype(dtype):
            before = predictor.predict_proba(texts, domains=domains)
            adapter.onboard_domain("crypto", ordinal=5)
            fingerprint = predictor.reload(str(tmp_path / "artifact"))
            after = predictor.predict_proba(texts, domains=domains)
        np.testing.assert_array_equal(after, before)
        assert fingerprint == adapter.pipeline.fingerprint()
        assert predictor.pipeline.model_config.num_domains == 10

    def test_mismatched_loader_and_pipeline_rejected(self, tmp_path):
        pipeline = build_pipeline("float64")
        loader = ring_loader(pipeline, rows=16)
        loader.dataset.domain_names[0] = "renamed"
        with pytest.raises(ValueError, match="disagree on domain names"):
            OnlineAdapter(pipeline, loader,
                          AdapterConfig(export_path=str(tmp_path / "a")))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="export_path"):
            AdapterConfig(export_path="")
        with pytest.raises(ValueError, match="epochs_per_adaptation"):
            AdapterConfig(export_path="x", epochs_per_adaptation=0)
        with pytest.raises(ValueError, match="min_feedback"):
            AdapterConfig(export_path="x", min_feedback=0)
