"""Builders shared by the streaming-subsystem tests.

The root conftest's loaders are built with ``feature_extractors=`` (consumed
at construction), but the streaming ring buffer needs loaders built with
``channels=`` so rows can be re-encoded in place — hence these private
builders.  The corpus/vocab are module-cached (dtype-independent plain
NumPy); models, loaders and pipelines are rebuilt per call inside the
requested dtype policy.
"""

from __future__ import annotations

from repro.data import DataLoader, MultiDomainNewsDataset, make_weibo21_like
from repro.encoders import FrozenPretrainedEncoder, stock_channels
from repro.models import ModelConfig, build_model
from repro.serve import Pipeline
from repro.streaming import (
    AdapterConfig,
    DriftConfig,
    DriftMonitor,
    OnlineAdapter,
    StreamConfig,
    StreamRunner,
)
from repro.tensor import default_dtype

DTYPES = ("float64", "float32")
SCALE = 0.03
PLM_DIM = 16
MAX_LENGTH = 16

_DATASET = None
_VOCAB = None


def corpus():
    global _DATASET, _VOCAB
    if _DATASET is None:
        _DATASET = make_weibo21_like(scale=SCALE, seed=7)
        _VOCAB = _DATASET.build_vocabulary()
    return _DATASET, _VOCAB


def small_config(num_domains: int, seed: int = 5) -> ModelConfig:
    return ModelConfig(plm_dim=PLM_DIM, num_domains=num_domains,
                       cnn_channels=8, kernel_sizes=(1, 2, 3), rnn_hidden=8,
                       hidden_dim=16, mlp_hidden=(16,), num_experts=3,
                       expert_hidden=12, domain_embedding_dim=6, seed=seed)


def build_pipeline(dtype: str, model_name: str = "textcnn_s") -> Pipeline:
    dataset, vocab = corpus()
    with default_dtype(dtype):
        encoder = FrozenPretrainedEncoder(len(vocab), output_dim=PLM_DIM, seed=3)
        model = build_model(model_name, small_config(dataset.num_domains))
        return Pipeline.from_training(model, vocab, encoder,
                                      max_length=MAX_LENGTH,
                                      domain_names=list(dataset.domain_names))


def ring_loader(pipeline: Pipeline, rows: int = 32) -> DataLoader:
    """A channel-built loader over the first ``rows`` corpus items.

    Items and domain names are copied so onboarding (which appends to the
    loader's domain vocabulary) and ring writes never mutate the cached
    corpus shared across tests.
    """
    dataset, vocab = corpus()
    with default_dtype(pipeline.dtype):
        ring = MultiDomainNewsDataset(list(dataset.items[:rows]),
                                      domain_names=list(dataset.domain_names),
                                      name="stream-ring")
        return DataLoader(ring, vocab, max_length=MAX_LENGTH, batch_size=16,
                          shuffle=True, seed=0,
                          channels=stock_channels(pipeline.encoder))


def build_stack(dtype: str, export_path: str, model_name: str = "textcnn_s",
                rows: int = 32, distilled: bool = False,
                drift_config: DriftConfig | None = None,
                stream_config: StreamConfig | None = None,
                min_feedback: int = 4) -> StreamRunner:
    """Pipeline + ring loader + adapter + monitor + runner, all tiny."""
    pipeline = build_pipeline(dtype, model_name)
    teachers = {}
    if distilled:
        dataset, _ = corpus()
        with default_dtype(dtype):
            teachers = {
                "unbiased_teacher": build_model(
                    "mdfend", small_config(dataset.num_domains, seed=6)),
                "clean_teacher": build_model(
                    "mdfend", small_config(dataset.num_domains, seed=7)),
            }
    adapter = OnlineAdapter(pipeline, ring_loader(pipeline, rows=rows),
                            AdapterConfig(export_path=export_path,
                                          min_feedback=min_feedback),
                            **teachers)
    # Tiny windows, zero PSI threshold: the monitor must fire on any
    # schedule long enough to fill a window, making adapt/reload reachable
    # in a few dozen events.
    monitor = DriftMonitor(pipeline.domain_names, drift_config or DriftConfig(
        window=16, min_window=8, reference_size=8, min_labeled=8,
        cooldown=24, psi_threshold=0.0, bias_threshold=0.4))
    return StreamRunner(pipeline.predictor(), monitor, adapter,
                        stream_config or StreamConfig(max_batch=8,
                                                      warmup_min_labeled=3))
