"""Stream/drift event serialisation and schedule persistence."""

import json

import pytest

from repro.streaming import (
    SCHEDULE_FORMAT_VERSION,
    DriftEvent,
    StreamEvent,
    drift_log_text,
    load_schedule,
    save_schedule,
)


class TestStreamEvent:
    def test_round_trip(self):
        event = StreamEvent(ordinal=3, text="breaking news", domain="health",
                            label=1, metadata={"phase": "seed"})
        assert StreamEvent.from_dict(event.as_dict()) == event

    def test_unlabeled_round_trip(self):
        event = StreamEvent(ordinal=0, text="x", domain="science")
        restored = StreamEvent.from_dict(event.as_dict())
        assert restored.label is None
        assert restored == event

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a serialised StreamEvent"):
            StreamEvent.from_dict({"text": "missing ordinal"})
        with pytest.raises(ValueError, match="not a serialised StreamEvent"):
            StreamEvent.from_dict({"ordinal": "NaNish", "text": "x",
                                   "domain": "d"})


class TestDriftEvent:
    def _event(self):
        return DriftEvent(ordinal=42, domain="disaster", kind="score_drift",
                          value=0.31, threshold=0.25, window=16,
                          details={"reference_size": 8})

    def test_round_trip(self):
        event = self._event()
        assert DriftEvent.from_dict(event.as_dict()) == event

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ValueError, match="not a serialised DriftEvent"):
            DriftEvent.from_dict({"domain": "d"})

    def test_drift_log_is_canonical_json_lines(self):
        events = [self._event(),
                  DriftEvent(ordinal=50, domain="health", kind="bias_drift",
                             value=0.5, threshold=0.25, window=12, details={})]
        text = drift_log_text(events)
        lines = text.splitlines()
        assert len(lines) == 2
        for line, event in zip(lines, events):
            payload = json.loads(line)
            assert payload == event.as_dict()
            # Canonical form: sorted keys, no whitespace separators.
            assert line == json.dumps(payload, sort_keys=True,
                                      separators=(",", ":"))

    def test_drift_log_byte_stable_across_calls(self):
        events = [self._event()]
        assert drift_log_text(events) == drift_log_text(list(events))


class TestSchedulePersistence:
    def _events(self):
        return [StreamEvent(ordinal=i, text=f"item {i}", domain="health",
                            label=i % 2 if i % 3 else None)
                for i in range(6)]

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "schedule.json"
        events = self._events()
        save_schedule(events, path, metadata={"source": "unit"})
        loaded, metadata = load_schedule(path)
        assert loaded == events
        assert metadata == {"source": "unit"}

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read stream schedule"):
            load_schedule(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_schedule(path)

    def test_load_rejects_future_format_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({
            "format_version": SCHEDULE_FORMAT_VERSION + 1, "events": []}))
        with pytest.raises(ValueError, match="format version"):
            load_schedule(path)

    def test_load_rejects_missing_version(self, tmp_path):
        path = tmp_path / "versionless.json"
        path.write_text(json.dumps({"events": []}))
        with pytest.raises(ValueError, match="format version"):
            load_schedule(path)

    def test_load_rejects_out_of_order_ordinals(self, tmp_path):
        path = tmp_path / "unsorted.json"
        events = self._events()[::-1]
        save_schedule(events, path)
        with pytest.raises(ValueError, match="out-of-order ordinals"):
            load_schedule(path)
