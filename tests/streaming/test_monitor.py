"""Drift monitor: PSI, windowed bias deviation, cooldowns and resets."""

import numpy as np
import pytest

from repro.streaming import DriftConfig, DriftMonitor, population_stability_index


class TestPSI:
    def test_identical_samples_near_zero(self):
        rng = np.random.default_rng(0)
        sample = rng.random(500)
        assert population_stability_index(sample, sample) == pytest.approx(
            0.0, abs=1e-9)

    def test_shifted_distribution_is_large(self):
        rng = np.random.default_rng(1)
        low = rng.uniform(0.0, 0.3, 400)
        high = rng.uniform(0.7, 1.0, 400)
        assert population_stability_index(low, high) > 1.0

    def test_symmetric_in_direction_of_shift(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(0.0, 0.5, 300)
        b = rng.uniform(0.5, 1.0, 300)
        forward = population_stability_index(a, b)
        backward = population_stability_index(b, a)
        assert forward == pytest.approx(backward, rel=1e-6)

    def test_out_of_range_values_clipped_not_dropped(self):
        # Degenerate inputs outside [0, 1] still land in the edge bins.
        value = population_stability_index([-0.5, 0.2], [1.5, 0.2])
        assert np.isfinite(value)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="bins must be >= 2"):
            population_stability_index([0.1], [0.2], bins=1)
        with pytest.raises(ValueError, match="non-empty"):
            population_stability_index([], [0.2])
        with pytest.raises(ValueError, match="non-empty"):
            population_stability_index([0.1], [])


class TestDriftConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DriftConfig(window=1)
        with pytest.raises(ValueError):
            DriftConfig(window=8, min_window=16)
        with pytest.raises(ValueError):
            DriftConfig(reference_size=1)
        with pytest.raises(ValueError):
            DriftConfig(min_labeled=0)


def _config(**overrides):
    base = dict(window=8, min_window=4, reference_size=4, min_labeled=4,
                cooldown=10, psi_threshold=0.25, bias_threshold=0.25)
    base.update(overrides)
    return DriftConfig(**base)


class TestScoreDrift:
    def _feed(self, monitor, domain, values, start=0, labels=None):
        fired = []
        for offset, value in enumerate(values):
            predicted = int(value >= 0.5)
            true = labels[offset] if labels is not None else None
            fired.extend(monitor.observe(start + offset, domain, value,
                                         predicted, true))
        return fired

    def test_fires_after_reference_and_window_fill(self):
        monitor = DriftMonitor(["a", "b"], _config())
        # Reference: low scores.  Rolling window: high scores — clear shift.
        fired = self._feed(monitor, "a", [0.1, 0.12, 0.08, 0.11])
        assert fired == []  # reference still freezing, nothing to test against
        fired = self._feed(monitor, "a", [0.9, 0.92, 0.88, 0.95], start=4)
        assert len(fired) == 1
        event = fired[0]
        assert event.kind == "score_drift"
        assert event.domain == "a"
        assert event.value > event.threshold
        assert monitor.drift_events == [event]

    def test_stable_scores_never_fire(self):
        monitor = DriftMonitor(["a"], _config())
        fired = self._feed(monitor, "a", [0.3] * 20)
        assert fired == []

    def test_cooldown_suppresses_refiring(self):
        monitor = DriftMonitor(["a"], _config(cooldown=100))
        self._feed(monitor, "a", [0.1] * 4)
        fired = self._feed(monitor, "a", [0.9] * 30, start=4)
        assert len(fired) == 1  # still drifting, but inside the cooldown

    def test_refires_after_cooldown(self):
        monitor = DriftMonitor(["a"], _config(cooldown=5))
        self._feed(monitor, "a", [0.1] * 4)
        fired = self._feed(monitor, "a", [0.9] * 30, start=4)
        assert len(fired) > 1

    def test_reset_clears_reference_and_cooldown(self):
        monitor = DriftMonitor(["a"], _config(cooldown=1000))
        self._feed(monitor, "a", [0.1] * 4)
        assert len(self._feed(monitor, "a", [0.9] * 6, start=4)) == 1
        monitor.reset_domain("a")
        # New reference freezes on the post-reset distribution; the same high
        # scores are now the baseline and must not fire.
        fired = self._feed(monitor, "a", [0.9] * 10, start=100)
        assert fired == []

    def test_domains_are_independent(self):
        monitor = DriftMonitor(["a", "b"], _config())
        self._feed(monitor, "a", [0.1] * 4)
        self._feed(monitor, "b", [0.5] * 12)
        fired = self._feed(monitor, "a", [0.9] * 6, start=50)
        assert [event.domain for event in fired] == ["a"]

    def test_unknown_domain_rejected(self):
        monitor = DriftMonitor(["a"], _config())
        with pytest.raises(KeyError, match="not tracked"):
            monitor.observe(0, "mystery", 0.5, 1)

    def test_register_duplicate_rejected(self):
        monitor = DriftMonitor(["a"], _config())
        with pytest.raises(ValueError, match="already tracked"):
            monitor.register_domain("a")

    def test_registered_domain_starts_tracking(self):
        monitor = DriftMonitor(["a"], _config())
        monitor.register_domain("new")
        self._feed(monitor, "new", [0.1] * 4)
        fired = self._feed(monitor, "new", [0.9] * 6, start=10)
        assert [event.domain for event in fired] == ["new"]


class TestBiasDrift:
    def test_fires_when_one_domain_degrades(self):
        config = _config(window=32, min_labeled=4, psi_threshold=10.0)
        monitor = DriftMonitor(["good", "bad"], config)
        fired = []
        ordinal = 0
        # Domain "good": always correct.  Domain "bad": always wrong on fakes.
        for _ in range(8):
            fired.extend(monitor.observe(ordinal, "good", 0.9, 1, 1))
            ordinal += 1
            fired.extend(monitor.observe(ordinal, "bad", 0.1, 0, 1))
            ordinal += 1
        kinds = {event.kind for event in fired}
        assert kinds == {"bias_drift"}
        assert {event.domain for event in fired} <= {"good", "bad"}
        bad = [event for event in fired if event.domain == "bad"][0]
        assert bad.value > bad.threshold
        assert bad.details["fnr_domain"] == pytest.approx(1.0)

    def test_needs_per_domain_labeled_minimum(self):
        config = _config(window=32, min_labeled=6, psi_threshold=10.0)
        monitor = DriftMonitor(["good", "bad"], config)
        fired = []
        for ordinal in range(10):
            fired.extend(monitor.observe(ordinal, "good", 0.9, 1, 1))
        # Only one labeled "bad" observation: pooled minimum is met but the
        # domain's own evidence is too thin to accuse it.
        fired.extend(monitor.observe(50, "bad", 0.1, 0, 1))
        assert all(event.domain != "bad" for event in fired)

    def test_unlabeled_traffic_never_triggers_bias(self):
        monitor = DriftMonitor(["a"], _config(psi_threshold=10.0))
        fired = []
        for ordinal in range(30):
            fired.extend(monitor.observe(ordinal, "a", 0.9, 1, None))
        assert fired == []

    def test_bias_report_covers_pooled_window(self):
        monitor = DriftMonitor(["a", "b"], _config(window=32))
        for ordinal in range(4):
            monitor.observe(ordinal, "a", 0.9, 1, 0)   # false positives
            monitor.observe(100 + ordinal, "b", 0.1, 0, 0)
        report = monitor.bias_report()
        assert report.fpr_per_domain["a"] == pytest.approx(1.0)
        assert report.fpr_per_domain["b"] == pytest.approx(0.0)

    def test_snapshot_shape(self):
        monitor = DriftMonitor(["a"], _config())
        monitor.observe(0, "a", 0.4, 0, 1)
        snapshot = monitor.snapshot()
        assert snapshot["domains"]["a"]["observed"] == 1
        assert snapshot["domains"]["a"]["reference_frozen"] is False
        assert snapshot["labeled_window_fill"] == 1
        assert snapshot["drift_events"] == 0
