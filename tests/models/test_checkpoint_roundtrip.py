"""Checkpoint round-trips across the model zoo.

Saving a trained detector and loading it into a freshly initialised instance
must reproduce its predictions exactly — this is what makes the frozen-teacher
workflow (train once, distil many students) reliable.
"""

import numpy as np
import pytest

from repro.nn import load_checkpoint, save_checkpoint
from repro.models import available_models, build_model

#: exercise every architecture family without repeating near-identical variants
ROUNDTRIP_MODELS = ("bert", "bigru", "textcnn_s", "stylelstm", "dualemo",
                    "mmoe", "mose", "eann", "eddfn", "mdfend", "m3fend")


@pytest.mark.parametrize("name", ROUNDTRIP_MODELS)
class TestCheckpointRoundtrip:
    def test_state_dict_roundtrip_preserves_predictions(self, name, model_config,
                                                        sample_batch, tmp_path):
        source = build_model(name, model_config)
        source.eval()
        expected = source.predict_proba(sample_batch)

        path = tmp_path / f"{name}.npz"
        save_checkpoint(source, path)
        target = build_model(name, model_config.with_overrides(seed=model_config.seed + 99))
        target.eval()
        assert not np.allclose(target.predict_proba(sample_batch), expected)
        load_checkpoint(target, path)
        np.testing.assert_allclose(target.predict_proba(sample_batch), expected, atol=1e-10)

    def test_frozen_model_can_still_be_restored(self, name, model_config,
                                                sample_batch, tmp_path):
        source = build_model(name, model_config)
        source.freeze()
        path = tmp_path / f"{name}-frozen.npz"
        save_checkpoint(source, path)
        target = build_model(name, model_config)
        load_checkpoint(target, path)
        np.testing.assert_allclose(
            target.eval().predict_proba(sample_batch),
            source.eval().predict_proba(sample_batch), atol=1e-10)


def test_all_roundtrip_models_are_registered():
    registered = set(available_models())
    assert set(ROUNDTRIP_MODELS).issubset(registered)
