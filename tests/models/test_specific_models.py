"""Model-specific behaviours: adversarial branches, domain gates, memory bank."""

import numpy as np
import pytest

from repro.models import (
    EANN,
    EANNNoDAT,
    EDDFN,
    EDDFNNoDAT,
    M3FEND,
    MDFEND,
    DomainMemoryBank,
    build_model,
)
from repro.models.textcnn import TextCNNWithEmbedding
from repro.tensor import Tensor


class TestEANN:
    def test_adversarial_loss_larger_than_plain(self, model_config, sample_batch):
        eann = EANN(model_config)
        plain_loss = eann._criterion(eann(sample_batch), sample_batch.labels).item()
        total_loss, _ = eann.compute_loss(sample_batch)
        assert total_loss.item() > plain_loss

    def test_domain_logits_shape(self, model_config, sample_batch):
        eann = EANN(model_config)
        features = eann.extract_features(sample_batch)
        assert eann.domain_logits(features).shape == (len(sample_batch), model_config.num_domains)

    def test_nodat_variant_has_no_adversary(self, model_config, sample_batch):
        nodat = EANNNoDAT(model_config)
        assert not nodat.use_adversary
        with pytest.raises(RuntimeError):
            nodat.domain_logits(nodat.extract_features(sample_batch))

    def test_nodat_fewer_parameters(self, model_config):
        assert EANNNoDAT(model_config).num_parameters() < EANN(model_config).num_parameters()

    def test_grl_direction_on_encoder(self, model_config, sample_batch):
        """The domain loss gradient w.r.t. encoder weights must be reversed."""
        eann = EANN(model_config)
        from repro.tensor import functional as F

        features = eann.extract_features(sample_batch)
        domain_loss = F.cross_entropy(eann.domain_classifier(features), sample_batch.domains)
        domain_loss.backward()
        plain_grad = eann.encoder.convolutions[0].weight.grad.copy()
        eann.zero_grad()

        features = eann.extract_features(sample_batch)
        adv_loss = F.cross_entropy(eann.domain_logits(features), sample_batch.domains)
        adv_loss.backward()
        reversed_grad = eann.encoder.convolutions[0].weight.grad
        # Dropout masks differ between the two passes, so compare on direction only.
        cosine = (plain_grad * reversed_grad).sum() / (
            np.linalg.norm(plain_grad) * np.linalg.norm(reversed_grad) + 1e-12)
        assert cosine < 0


class TestEDDFN:
    def test_loss_includes_domain_terms(self, model_config, sample_batch):
        eddfn = EDDFN(model_config)
        loss, logits = eddfn.compute_loss(sample_batch)
        plain = eddfn._criterion(logits, sample_batch.labels).item()
        assert loss.item() > plain

    def test_nodat_has_no_shared_adversary(self, model_config):
        nodat = EDDFNNoDAT(model_config)
        assert not hasattr(nodat, "shared_domain_head") or not nodat.use_adversary

    def test_feature_dim_is_concatenation(self, model_config, sample_batch):
        eddfn = EDDFN(model_config)
        assert eddfn.feature_dim == 2 * model_config.hidden_dim
        assert eddfn.extract_features(sample_batch).shape[1] == eddfn.feature_dim


class TestMDFEND:
    def test_uses_domain_labels(self, model_config, sample_batch):
        mdfend = MDFEND(model_config)
        mdfend.eval()
        baseline = mdfend(sample_batch).numpy()
        shuffled = sample_batch
        shuffled.domains = np.roll(shuffled.domains, 1)
        perturbed = mdfend(shuffled).numpy()
        shuffled.domains = np.roll(shuffled.domains, -1)  # restore
        assert not np.allclose(baseline, perturbed)

    def test_expert_count(self, model_config):
        mdfend = MDFEND(model_config)
        assert len(mdfend.experts) == model_config.num_experts


class TestDomainMemoryBank:
    def test_update_moves_memory_towards_domain_mean(self):
        bank = DomainMemoryBank(num_domains=2, dim=3, momentum=0.5, seed=0)
        before = bank.memory.copy()
        features = np.ones((4, 3))
        domains = np.zeros(4, dtype=int)
        bank.update(features, domains)
        np.testing.assert_allclose(bank.memory[0], 0.5 * before[0] + 0.5)
        np.testing.assert_allclose(bank.memory[1], before[1])

    def test_soft_domain_labels_are_distributions(self):
        bank = DomainMemoryBank(num_domains=3, dim=4, seed=0)
        soft = bank.soft_domain_labels(np.random.default_rng(0).standard_normal((5, 4)))
        assert soft.shape == (5, 3)
        np.testing.assert_allclose(soft.sum(axis=1), 1.0)

    def test_closer_memory_gets_higher_weight(self):
        bank = DomainMemoryBank(num_domains=2, dim=2, seed=0)
        bank.memory = np.array([[0.0, 0.0], [10.0, 10.0]])
        soft = bank.soft_domain_labels(np.array([[0.1, 0.1]]))
        assert soft[0, 0] > soft[0, 1]


class TestM3FEND:
    def test_memory_updates_only_in_training(self, model_config, sample_batch):
        m3 = M3FEND(model_config)
        m3.eval()
        before = m3.memory.memory.copy()
        m3(sample_batch)
        np.testing.assert_allclose(m3.memory.memory, before)
        m3.train()
        m3(sample_batch)
        assert not np.allclose(m3.memory.memory, before)

    def test_soft_domain_distribution_shape(self, model_config, sample_batch):
        m3 = M3FEND(model_config)
        soft = m3.soft_domain_distribution(sample_batch)
        assert soft.shape == (len(sample_batch), model_config.num_domains)
        np.testing.assert_allclose(soft.sum(axis=1), 1.0)

    def test_requires_style_and_emotion_channels(self, model_config):
        assert "style" in M3FEND.required_features
        assert "emotion" in M3FEND.required_features


class TestTextCNNWithEmbedding:
    def test_trains_on_token_ids_only(self, model_config, sample_batch):
        model = TextCNNWithEmbedding(model_config, vocab_size=int(sample_batch.token_ids.max()) + 1)
        logits = model(sample_batch)
        assert logits.shape == (len(sample_batch), 2)
        loss, _ = model.compute_loss(sample_batch)
        loss.backward()
        assert model.embedding.weight.grad is not None


class TestStudentArchitectures:
    def test_textcnn_s_uses_paper_kernels(self, model_config):
        student = build_model("textcnn_s", model_config)
        assert student.encoder.kernel_sizes == model_config.kernel_sizes

    def test_textcnn_baseline_has_extra_kernel(self, model_config):
        baseline = build_model("textcnn", model_config)
        assert 10 in baseline.encoder.kernel_sizes

    def test_student_parameter_budget_smaller_than_m3fend(self, model_config):
        student = build_model("textcnn_s", model_config)
        teacher = build_model("m3fend", model_config)
        assert student.num_parameters() < teacher.num_parameters()


class TestMaskPaddingOption:
    """``ModelConfig.mask_padding`` routes the padding mask into the RNNs."""

    @staticmethod
    def _padded(batch):
        """The fixture corpus has no short texts; truncate some rows' masks."""
        import dataclasses

        mask = batch.mask.copy()
        mask[::2, mask.shape[1] // 2:] = 0.0
        return dataclasses.replace(batch, mask=mask)

    @pytest.mark.parametrize("name", ("bigru", "stylelstm", "mose", "dualemo"))
    def test_masked_encoding_differs_on_padded_batches(self, model_config,
                                                       sample_batch, name):
        batch = self._padded(sample_batch)
        default = build_model(name, model_config)
        masked = build_model(name, model_config.with_overrides(mask_padding=True))
        default.eval(), masked.eval()
        default_logits = default(batch).numpy()
        masked_logits = masked(batch).numpy()
        assert np.isfinite(masked_logits).all()
        # Same parameters (same seed); only the padded-step handling differs.
        assert not np.allclose(default_logits, masked_logits)

    @pytest.mark.parametrize("mask_padding", (False, True))
    def test_mose_fused_expert_lanes_match_composed(self, model_config,
                                                    sample_batch, mask_padding):
        """MoSE's one-scan expert dispatch equals per-expert composed passes."""
        from repro.tensor import fused_kernels

        batch = self._padded(sample_batch) if mask_padding else sample_batch
        model = build_model("mose",
                            model_config.with_overrides(mask_padding=mask_padding))
        model.eval()
        with fused_kernels(True):
            fused_logits = model(batch).numpy()
        with fused_kernels(False):
            composed_logits = model(batch).numpy()
        np.testing.assert_allclose(fused_logits, composed_logits,
                                   atol=1e-8, rtol=1e-7)

    @pytest.mark.parametrize("name", ("bigru", "stylelstm", "mose"))
    def test_masked_models_train(self, model_config, sample_batch, name):
        model = build_model(name, model_config.with_overrides(mask_padding=True))
        loss, logits = model.compute_loss(self._padded(sample_batch))
        assert np.isfinite(loss.item())
        loss.backward()
        assert any(p.grad is not None and np.abs(p.grad).sum() > 0
                   for p in model.parameters())
