"""Contract tests shared by every detector in the zoo."""

import numpy as np
import pytest

from repro.models import available_models, build_model, display_name
from repro.tensor import functional as F

ALL_MODELS = available_models()


class TestRegistry:
    def test_all_expected_models_registered(self):
        expected = {"bigru", "bigru_s", "textcnn", "textcnn_s", "bert", "roberta",
                    "stylelstm", "dualemo", "mmoe", "mose", "eann", "eann_nodat",
                    "eddfn", "eddfn_nodat", "mdfend", "m3fend"}
        assert expected == set(ALL_MODELS)

    def test_unknown_model_raises(self, model_config):
        with pytest.raises(KeyError):
            build_model("does_not_exist", model_config)

    def test_display_names(self):
        assert display_name("m3fend") == "M3FEND"
        assert display_name("textcnn_s") == "TextCNN-S"
        assert display_name("mystery") == "mystery"

    def test_register_model_duplicate_rejected(self, model_config):
        from repro.models import register_model
        from repro.models.textcnn import TextCNN

        with pytest.raises(ValueError):
            register_model("textcnn", TextCNN)


@pytest.mark.parametrize("name", ALL_MODELS)
class TestDetectorContract:
    def test_forward_logits_shape(self, name, model_config, sample_batch):
        model = build_model(name, model_config)
        logits = model(sample_batch)
        assert logits.shape == (len(sample_batch), 2)
        assert np.isfinite(logits.numpy()).all()

    def test_features_match_declared_dim(self, name, model_config, sample_batch):
        model = build_model(name, model_config)
        features = model.extract_features(sample_batch)
        assert features.shape == (len(sample_batch), model.feature_dim)

    def test_predict_proba_valid(self, name, model_config, sample_batch):
        model = build_model(name, model_config)
        probabilities = model.predict_proba(sample_batch)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)
        assert probabilities.min() >= 0.0
        predictions = model.predict(sample_batch)
        assert set(np.unique(predictions)).issubset({0, 1})

    def test_compute_loss_backward_updates_all_parameters(self, name, model_config, sample_batch):
        model = build_model(name, model_config)
        loss, logits = model.compute_loss(sample_batch)
        assert logits.shape[0] == len(sample_batch)
        assert np.isfinite(loss.item())
        loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)

    def test_eval_mode_is_deterministic(self, name, model_config, sample_batch):
        model = build_model(name, model_config)
        model.eval()
        first = model(sample_batch).numpy()
        second = model(sample_batch).numpy()
        np.testing.assert_allclose(first, second)

    def test_same_seed_same_initialisation(self, name, model_config, sample_batch):
        model_a = build_model(name, model_config)
        model_b = build_model(name, model_config)
        model_a.eval(), model_b.eval()
        np.testing.assert_allclose(model_a(sample_batch).numpy(),
                                   model_b(sample_batch).numpy())

    def test_parameter_count_positive(self, name, model_config):
        model = build_model(name, model_config)
        assert model.num_parameters() > 0
