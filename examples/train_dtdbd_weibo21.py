"""Full Chinese-dataset comparison: regenerate a Table VI-style results table.

Trains a configurable subset of the baseline zoo plus DTDBD (with MDFEND and
M3FEND clean teachers) on the Weibo21-like corpus and prints per-domain F1,
overall F1, FNED, FPED and Total in the paper's layout.

Run with:
    python examples/train_dtdbd_weibo21.py                       # default subset
    python examples/train_dtdbd_weibo21.py --all                 # every baseline
    python examples/train_dtdbd_weibo21.py --baselines textcnn m3fend
    REPRO_SCALE=1.0 python examples/train_dtdbd_weibo21.py --all # paper-sized corpus
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    TABLE6_BASELINES,
    default_chinese_config,
    format_comparison_table,
    prepare_data,
    run_comparison,
)

DEFAULT_SUBSET = ("bigru", "textcnn", "eann", "eddfn", "mdfend", "m3fend")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--all", action="store_true", help="run all Table VI baselines")
    parser.add_argument("--baselines", nargs="*", default=None,
                        help="explicit list of baselines (registry names)")
    parser.add_argument("--no-dtdbd", action="store_true",
                        help="skip the Our(MD)/Our(M3) rows")
    args = parser.parse_args()

    if args.baselines:
        baselines = tuple(args.baselines)
    elif args.all:
        baselines = TABLE6_BASELINES
    else:
        baselines = DEFAULT_SUBSET

    config = default_chinese_config(scale=args.scale, epochs=args.epochs)
    bundle = prepare_data(config)
    print(f"Corpus: {len(bundle.dataset)} items, "
          f"train/val/test = {bundle.splits.sizes()}")
    print(f"Training {len(baselines)} baselines"
          + ("" if args.no_dtdbd else " + Our(MD) + Our(M3)") + " ...\n")

    reports = run_comparison(config, baselines=baselines,
                             include_dtdbd=not args.no_dtdbd, bundle=bundle)
    print(format_comparison_table(reports, bundle.dataset.domain_names,
                                  title="Chinese dataset comparison (Table VI analogue)"))

    if not args.no_dtdbd:
        best_baseline_total = min(reports[name].total for name in baselines)
        ours_total = min(reports["our_md"].total, reports["our_m3"].total)
        print(f"\nBest baseline Total bias: {best_baseline_total:.4f}; "
              f"DTDBD Total bias: {ours_total:.4f}")


if __name__ == "__main__":
    main()
