"""Case study (Figure 3): how models treat ambiguous news from skewed domains.

Generates three probe items — real news without an explicit veracity cue from
the entertainment, politics and disaster domains — trains M3FEND, MDFEND and a
DTDBD student, and prints each model's probability for the true label, plus the
Figure-2 style domain-mixing analysis of their feature spaces.

Run with:  python examples/case_study.py [--scale 0.25] [--epochs 8]
"""

from __future__ import annotations

import argparse

from repro.analysis import case_study_summary
from repro.experiments import (
    default_chinese_config,
    format_case_study,
    format_mixing_scores,
    prepare_data,
    run_figure2_mixing,
    run_figure3_case_study,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--skip-tsne", action="store_true",
                        help="skip the Figure-2 domain-mixing analysis (faster)")
    args = parser.parse_args()

    config = default_chinese_config(scale=args.scale, epochs=args.epochs)
    bundle = prepare_data(config)

    rows = run_figure3_case_study(config, bundle=bundle)
    print(format_case_study(rows, title="Case study (Figure 3 analogue)"))

    print("\nSummary:")
    for model, stats in case_study_summary(rows).items():
        print(f"  {model:10s} accuracy={stats['accuracy']:.2f} "
              f"mean confidence in truth={stats['mean_confidence_true_label']:.3f}")

    if not args.skip_tsne:
        print("\nRunning t-SNE domain-mixing analysis (Figure 2 analogue) ...")
        scores = run_figure2_mixing(config, bundle=bundle, max_points=250)
        print(format_mixing_scores(scores))


if __name__ == "__main__":
    main()
