"""Quickstart: train a student detector with DTDBD on a small synthetic corpus.

This script walks through the full public API in ~60 lines:

1. generate a Weibo21-like multi-domain corpus and split it,
2. build the frozen encoder + data loaders,
3. train a plain TextCNN-S student (the biased baseline),
4. train the unbiased teacher (DAT-IE) and a clean teacher (MDFEND),
5. distil a fresh student with DTDBD,
6. compare F1 and the domain-bias metrics (FNED / FPED / Total).

Run with:  python examples/quickstart.py  [--scale 0.2] [--epochs 6]
"""

from __future__ import annotations

import argparse

from repro.core import (
    DATConfig,
    DTDBDConfig,
    DTDBDTrainer,
    Trainer,
    TrainerConfig,
    evaluate_model,
    train_unbiased_teacher,
)
from repro.data import DataLoader, make_weibo21_like, stratified_split
from repro.encoders import (
    FrozenPretrainedEncoder,
    emotion_feature_extractor,
    style_feature_extractor,
)
from repro.models import ModelConfig, build_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2,
                        help="fraction of the paper-sized Weibo21 corpus to generate")
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--seed", type=int, default=2024)
    args = parser.parse_args()

    # 1. Data ------------------------------------------------------------- #
    dataset = make_weibo21_like(scale=args.scale, seed=args.seed)
    splits = stratified_split(dataset, train_fraction=0.6, val_fraction=0.1, seed=0)
    vocab = splits.train.build_vocabulary()
    print(f"Corpus: {len(dataset)} items across {dataset.num_domains} domains, "
          f"vocabulary size {len(vocab)}")

    # 2. Frozen encoder + loaders ------------------------------------------ #
    encoder = FrozenPretrainedEncoder(len(vocab), output_dim=32, seed=args.seed)
    extractors = {"plm": encoder.as_feature_extractor(),
                  "style": style_feature_extractor,
                  "emotion": emotion_feature_extractor}

    def loader(split, shuffle):
        return DataLoader(split, vocab, max_length=24, batch_size=32, shuffle=shuffle,
                          seed=0, feature_extractors=extractors)

    train_loader = loader(splits.train, True)
    val_loader = loader(splits.val, False)
    test_loader = loader(splits.test, False)

    model_config = ModelConfig(plm_dim=32, num_domains=dataset.num_domains, seed=args.seed)

    # 3. Plain student (biased baseline) ----------------------------------- #
    student = build_model("textcnn_s", model_config)
    Trainer(student, TrainerConfig(epochs=args.epochs, learning_rate=2e-3)).fit(
        train_loader, val_loader)
    student_report = evaluate_model(student, test_loader, model_name="student")

    # 4. Teachers ----------------------------------------------------------- #
    unbiased = build_model("textcnn_s", model_config.with_overrides(seed=args.seed + 1))
    train_unbiased_teacher(unbiased, train_loader, val_loader,
                           config=DATConfig(epochs=args.epochs, learning_rate=2e-3))
    clean = build_model("mdfend", model_config.with_overrides(seed=args.seed + 2))
    Trainer(clean, TrainerConfig(epochs=args.epochs, learning_rate=2e-3)).fit(
        train_loader, val_loader)

    # 5. DTDBD distillation -------------------------------------------------- #
    distilled = build_model("textcnn_s", model_config.with_overrides(seed=args.seed + 3))
    trainer = DTDBDTrainer(distilled, unbiased, clean,
                           DTDBDConfig(epochs=args.epochs, learning_rate=2e-3))
    trainer.fit(train_loader, val_loader)
    dtdbd_report = evaluate_model(distilled, test_loader, model_name="dtdbd")

    # 6. Compare ------------------------------------------------------------- #
    print("\n{:<12} {:>8} {:>8} {:>8} {:>8}".format("model", "F1", "FNED", "FPED", "Total"))
    for report in (student_report, dtdbd_report):
        print("{:<12} {:>8.4f} {:>8.4f} {:>8.4f} {:>8.4f}".format(
            report.model, report.overall_f1, report.fned, report.fped, report.total))
    print("\nTeacher weights over epochs (w_ADD, w_DKD):")
    print("   " + ", ".join(f"({a:.2f}, {d:.2f})" for a, d in trainer.weight_history))


if __name__ == "__main__":
    main()
