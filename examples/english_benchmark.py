"""English-dataset comparison (Table VII analogue): FakeNewsNet + COVID-like corpus.

Trains a subset of baselines plus DTDBD on the three-domain English-like corpus
(gossipcop, politifact, covid) and prints the Table VII row layout.  The paper's
observation to look for: DTDBD clearly reduces FNED/FPED/Total while its F1 sits
slightly below MDFEND / M3FEND because the three domains share little content.

Run with:  python examples/english_benchmark.py [--scale 0.08] [--epochs 8]
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    default_english_config,
    format_comparison_table,
    prepare_data,
    run_comparison,
)

DEFAULT_SUBSET = ("bigru", "textcnn", "eann", "mdfend", "m3fend")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.08)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--baselines", nargs="*", default=list(DEFAULT_SUBSET))
    args = parser.parse_args()

    config = default_english_config(scale=args.scale, epochs=args.epochs)
    bundle = prepare_data(config)
    print(f"English-like corpus: {len(bundle.dataset)} items across "
          f"{bundle.dataset.domain_names}")

    reports = run_comparison(config, baselines=tuple(args.baselines), bundle=bundle)
    print(format_comparison_table(reports, bundle.dataset.domain_names,
                                  title="English dataset comparison (Table VII analogue)"))


if __name__ == "__main__":
    main()
