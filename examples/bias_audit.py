"""Bias audit: reproduce the paper's Section IV analysis (Tables I and III).

Trains the four advanced baselines the paper audits (EANN, EDDFN, MDFEND and
M3FEND) on a Weibo21-like corpus and reports their FNR/FPR on the four most
imbalance-affected domains, together with the corpus imbalance statistics that
cause the bias.

Run with:  python examples/bias_audit.py [--scale 0.3] [--epochs 8]
"""

from __future__ import annotations

import argparse

from repro.analysis import TABLE3_MODELS
from repro.data import dataset_statistics_table, imbalance_summary
from repro.experiments import (
    default_chinese_config,
    format_bias_audit,
    format_dataset_statistics,
    prepare_data,
    run_table3,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--models", nargs="*", default=list(TABLE3_MODELS),
                        help="models to audit (registry names)")
    args = parser.parse_args()

    config = default_chinese_config(scale=args.scale, epochs=args.epochs)
    bundle = prepare_data(config)

    # Table I-style statistics: where the imbalance comes from.
    table = dataset_statistics_table(bundle.dataset)
    print(format_dataset_statistics(table, title="Corpus statistics (Table I analogue)"))
    summary = imbalance_summary(bundle.dataset)
    print(f"\n%News spread across domains: {summary['news_share_spread']:.1f} points; "
          f"%Fake spread: {summary['fake_ratio_spread']:.1f} points\n")

    # Table III: per-domain FNR / FPR of the advanced baselines.
    audit = run_table3(config, models=tuple(args.models), bundle=bundle)
    print(format_bias_audit(audit, title="Domain bias audit (Table III analogue)"))

    print("\nQualitative shape (per model):")
    for model, stats in audit.skew_summary().items():
        print(f"  {model:10s} fake-heavy domains over-call fake: "
              f"{stats['fake_heavy_overcalls_fake']}, "
              f"real-heavy domains over-call real: {stats['real_heavy_overcalls_real']}")


if __name__ == "__main__":
    main()
