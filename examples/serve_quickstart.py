"""Serving quickstart: train → export → load → predict from raw text.

This script walks through the `repro.serve` inference-pipeline API:

1. prepare data and train a small student detector,
2. bundle it into one servable artifact (`export_pipeline`),
3. load the artifact back the way a serving process would
   (`load_pipeline` — no training-time state survives the round-trip),
4. score raw text with the `Predictor`,
5. amortise many single requests into full batches with the
   micro-batching queue, and stream a corpus with `predict_iter`.

Run with:  python examples/serve_quickstart.py  [--scale 0.1] [--epochs 3]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.experiments import (
    default_chinese_config,
    export_pipeline,
    prepare_data,
    train_baseline,
)
from repro.serve import load_pipeline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--out", type=str, default=None,
                        help="artifact directory (default: a temp directory)")
    args = parser.parse_args()

    # 1. Train ------------------------------------------------------------- #
    config = default_chinese_config(scale=args.scale, epochs=args.epochs)
    bundle = prepare_data(config)
    model, report = train_baseline(config.student_name, bundle)
    print(f"Trained {config.student_name}: test F1={report.overall_f1:.3f}")

    # 2. Export ------------------------------------------------------------ #
    out = args.out or tempfile.mkdtemp(prefix="repro_pipeline_")
    path = export_pipeline(model, bundle, out)
    print(f"Exported pipeline artifact -> {path} "
          "(manifest.json + weights.npz + vocab.json)")

    # 3. Load (as a fresh serving process would) --------------------------- #
    pipeline = load_pipeline(path)
    predictor = pipeline.predictor()
    print(f"Loaded: model={pipeline.model_name} dtype={pipeline.dtype} "
          f"domains={len(pipeline.domain_names)} vocab={len(pipeline.vocab)}")

    # 4. Predict from raw text --------------------------------------------- #
    texts = [item.text for item in bundle.splits.test.items[:4]]
    domains = [item.domain for item in bundle.splits.test.items[:4]]
    for text, prediction in zip(texts, predictor.predict(texts, domains=domains)):
        print(f"  {prediction.label_name:4s} p(fake)={prediction.probability_fake:.3f} "
              f"domain={prediction.domain:12s} {text[:40]}...")

    # 5. Micro-batching + streaming ---------------------------------------- #
    with predictor.microbatch(max_batch=32, max_latency_ms=50.0) as queue:
        tickets = [queue.submit(item.text, item.domain)
                   for item in bundle.splits.test.items[:100]]
    correct = sum(ticket.result.label == item.label
                  for ticket, item in zip(tickets, bundle.splits.test.items[:100]))
    print(f"Micro-batched 100 requests in {queue.batches_flushed} batches "
          f"({queue.flush_reasons}); accuracy {correct}/100")

    total = sum(1 for _ in predictor.predict_iter(
        (item.text for item in bundle.splits.test), batch_size=64))
    print(f"Streamed the whole test split through predict_iter: {total} items")


if __name__ == "__main__":
    main()
