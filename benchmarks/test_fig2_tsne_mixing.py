"""Figure 2 — t-SNE of intermediate features, quantified as a domain-mixing score.

The paper's visual claim is that the DTDBD student mixes samples from different
domains in feature space more than the plain student / M3FEND do (while the
DAT-IE-only model separates domains even more strongly than the student).  We
quantify "mixing" as the normalised entropy of domain labels among t-SNE
nearest neighbours.
"""

from _bench_utils import emit, run_once

from repro.experiments import format_mixing_scores, run_figure2_mixing


def test_figure2_domain_mixing_scores(benchmark, chinese_config, chinese_bundle):
    scores = run_once(benchmark, lambda: run_figure2_mixing(
        chinese_config, bundle=chinese_bundle, max_points=250))
    emit("fig2_tsne_mixing",
         format_mixing_scores(scores, title="Figure 2 — t-SNE domain-mixing scores"))

    assert set(scores) == {"m3fend", "textcnn_u", "textcnn_u+dat_ie", "textcnn_u+dtdbd"}
    for result in scores.values():
        assert 0.0 <= result["mixing_score"] <= 1.0
        assert result["num_points"] > 50
    # Core claim: the DTDBD student's features are at least as domain-mixed as
    # the plain student's (it learned cross-domain structure, not domain identity).
    assert scores["textcnn_u+dtdbd"]["mixing_score"] >= scores["textcnn_u"]["mixing_score"] - 0.05
