"""Tables IV and V — Chinese and English dataset statistics."""

from _bench_utils import emit, run_once

from repro.data import (
    ENGLISH_DOMAIN_SPECS,
    WEIBO21_DOMAIN_SPECS,
    dataset_statistics_table,
    domain_statistics,
    make_english_like,
    make_weibo21_like,
)
from repro.experiments import format_dataset_statistics


def test_table4_chinese_dataset_statistics(benchmark):
    dataset = run_once(benchmark, lambda: make_weibo21_like(scale=1.0, seed=2024))
    table = dataset_statistics_table(dataset)
    emit("table4_chinese_stats",
         format_dataset_statistics(table, title="Table IV — Chinese dataset statistics"))

    stats = {row.name: row for row in domain_statistics(dataset)}
    for spec in WEIBO21_DOMAIN_SPECS:
        assert stats[spec.name].fake == spec.fake
        assert stats[spec.name].real == spec.real
    assert table["total"] == 9128 and table["total_fake"] == 4488


def test_table5_english_dataset_statistics(benchmark):
    # The English corpus is generated at a reduced scale by default (28,764
    # items would dominate benchmark time); the ratios are scale-invariant.
    dataset = run_once(benchmark, lambda: make_english_like(scale=0.1, seed=2024))
    table = dataset_statistics_table(dataset)
    emit("table5_english_stats",
         format_dataset_statistics(table, title="Table V — English dataset statistics (scale 0.1)"))

    by_name = {row["domain"]: row for row in table["domains"]}
    full = {spec.name: spec for spec in ENGLISH_DOMAIN_SPECS}
    for name, row in by_name.items():
        expected_ratio = 100.0 * full[name].fake / full[name].total
        assert abs(row["pct_fake"] - expected_ratio) < 1.5
    # Gossipcop dominates the corpus, COVID is second, Politifact is tiny.
    assert by_name["gossipcop"]["total"] > by_name["covid"]["total"] > by_name["politifact"]["total"]
