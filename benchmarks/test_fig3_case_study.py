"""Figure 3 — case study on ambiguous real news from prior-skewed domains.

The probes are real news items with no explicit veracity signal from
entertainment (fake-light) and politics / disaster (fake-heavy) — the same
failure mode as the paper's three examples.  The claim checked: DTDBD assigns
at least as much probability to the true label as the clean baselines do on
average, i.e. it resists the domain prior.
"""

import numpy as np
from _bench_utils import emit, run_once

from repro.analysis import case_study_summary
from repro.experiments import format_case_study, run_figure3_case_study


def test_figure3_case_study(benchmark, chinese_config, chinese_bundle):
    rows = run_once(benchmark, lambda: run_figure3_case_study(chinese_config,
                                                              bundle=chinese_bundle))
    summary = case_study_summary(rows)
    text = format_case_study(rows, title="Figure 3 — case study (ambiguous real news)")
    text += "\n\nPer-model mean confidence in the true label:\n"
    for model, stats in summary.items():
        text += (f"    {model.ljust(10)} accuracy={stats['accuracy']:.2f} "
                 f"confidence={stats['mean_confidence_true_label']:.3f}\n")
    emit("fig3_case_study", text)

    assert len(rows) == 3
    assert set(summary) == {"m3fend", "mdfend", "dtdbd"}
    baseline_confidence = np.mean([summary["m3fend"]["mean_confidence_true_label"],
                                   summary["mdfend"]["mean_confidence_true_label"]])
    # DTDBD should not be less confident in the truth than the baselines by a
    # wide margin (the paper shows it being both more accurate and more confident).
    assert summary["dtdbd"]["mean_confidence_true_label"] >= baseline_confidence - 0.1
