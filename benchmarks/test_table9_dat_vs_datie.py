"""Table IX — traditional DAT versus the paper's DAT-IE.

Shape claims: both adversarial variants reduce the student's domain bias, and
DAT-IE keeps F1 at least as high as plain DAT (the information-entropy term
prevents the "single most relevant domain" shortcut).
"""

from _bench_utils import emit, run_once

from repro.experiments import format_compact_table, run_table9_dat_comparison


def test_table9_dat_vs_dat_ie(benchmark, chinese_config, chinese_bundle):
    results = run_once(benchmark, lambda: run_table9_dat_comparison(
        chinese_config, student_names=("textcnn_s", "bigru_s"), bundle=chinese_bundle))

    blocks = [format_compact_table(rows, title=f"Table IX — DAT vs DAT-IE ({name})")
              for name, rows in results.items()]
    emit("table9_dat_vs_datie", "\n\n".join(blocks))

    for name, rows in results.items():
        assert set(rows) == {"student", "student+dat", "student+dat_ie"}, name

    import numpy as np

    def mean_over_students(row_name, attribute):
        return float(np.mean([getattr(results[s][row_name], attribute) for s in results]))

    # Averaged over the two student architectures (single runs are noisy):
    # DAT-IE mitigates the student's bias ...
    assert mean_over_students("student+dat_ie", "total") < mean_over_students("student", "total")
    # ... at least as well as plain DAT (the paper's Table IX ordering) ...
    assert mean_over_students("student+dat_ie", "total") <= mean_over_students("student+dat", "total") * 1.05
    # ... while keeping F1 no worse than plain DAT (information-entropy term
    # prevents the single-domain shortcut).
    assert mean_over_students("student+dat_ie", "overall_f1") >= \
        mean_over_students("student+dat", "overall_f1") - 0.03
