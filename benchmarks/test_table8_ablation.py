"""Table VIII — ablation of the DTDBD components on TextCNN-S and BiGRU-S.

Shape claims checked:
* DAT-IE and ADD reduce the student's Total bias;
* DND (domain knowledge distillation alone) improves or preserves F1;
* the full DTDBD reduces bias relative to the plain student while keeping F1
  competitive.
"""

from _bench_utils import emit, run_once

from repro.experiments import format_compact_table, run_table8_ablation


def test_table8_component_ablation(benchmark, chinese_config, chinese_bundle):
    results = run_once(benchmark, lambda: run_table8_ablation(
        chinese_config, student_names=("textcnn_s", "bigru_s"), bundle=chinese_bundle))

    blocks = []
    for student_name, rows in results.items():
        blocks.append(format_compact_table(
            rows, title=f"Table VIII — ablation ({student_name})"))
    emit("table8_ablation", "\n\n".join(blocks))

    for student_name, rows in results.items():
        expected_rows = {"student", "student+dat_ie", "teacher_m3", "student+dnd",
                         "student+add", "wo_daa", "dtdbd"}
        assert expected_rows == set(rows), student_name

    # Shape checks averaged over the two student architectures (single runs of
    # a single variant are noisy at benchmark scale; the paper's claims are
    # about the components, not one architecture).
    def mean_over_students(row_name, attribute):
        import numpy as np

        return float(np.mean([getattr(results[s][row_name], attribute) for s in results]))

    student_total = mean_over_students("student", "total")
    student_f1 = mean_over_students("student", "overall_f1")
    # Adversarial de-biasing components do not inflate bias on average.
    assert mean_over_students("student+dat_ie", "total") < student_total * 1.10
    assert mean_over_students("student+add", "total") < student_total * 1.10
    # The clean teacher keeps performance high.
    assert mean_over_students("student+dnd", "overall_f1") >= student_f1 - 0.05
    # Full DTDBD: less biased than the plain student on average, F1
    # competitive per architecture — the paper's headline ablation result.
    # (The bias reduction, like the component claims above, is averaged over
    # the two students: a single variant on a single architecture is one
    # noisy training run at benchmark scale.)
    assert mean_over_students("dtdbd", "total") < student_total
    for student_name, rows in results.items():
        assert rows["dtdbd"].overall_f1 >= rows["student"].overall_f1 - 0.05, student_name
