"""Table III — FNR/FPR of four advanced baselines on the four skewed domains.

Shape check from the paper: models over-call "fake" (high FPR) on the
fake-heavy domains (disaster, politics) and over-call "real" (high FNR) on the
real-heavy domains (finance, entertainment).
"""

import numpy as np
from _bench_utils import emit, run_once

from repro.analysis import TABLE3_MODELS
from repro.experiments import format_bias_audit, run_table3


def test_table3_domain_bias_of_advanced_baselines(benchmark, chinese_config, chinese_bundle):
    audit = run_once(benchmark, lambda: run_table3(chinese_config, models=TABLE3_MODELS,
                                                   bundle=chinese_bundle))
    text = format_bias_audit(audit, title="Table III — FNR/FPR on skewed domains")
    summary = audit.skew_summary()
    lines = ["", "Shape check (mean over models):"]
    fake_heavy_fpr = np.mean([s["fake_heavy_fpr"] for s in summary.values()])
    fake_heavy_fnr = np.mean([s["fake_heavy_fnr"] for s in summary.values()])
    real_heavy_fpr = np.mean([s["real_heavy_fpr"] for s in summary.values()])
    real_heavy_fnr = np.mean([s["real_heavy_fnr"] for s in summary.values()])
    lines.append(f"  fake-heavy domains: FPR={fake_heavy_fpr:.3f} vs FNR={fake_heavy_fnr:.3f}")
    lines.append(f"  real-heavy domains: FNR={real_heavy_fnr:.3f} vs FPR={real_heavy_fpr:.3f}")
    emit("table3_domain_bias", text + "\n".join(lines))

    assert {row.model for row in audit.rows} == set(TABLE3_MODELS)
    # Paper's qualitative claim, on average across the four baselines:
    assert fake_heavy_fpr > real_heavy_fpr
    assert real_heavy_fnr > fake_heavy_fnr
