"""Inference-pipeline throughput: micro-batched Predictor vs per-text calls.

The serving workload is many independent single-text requests.  Scoring each
one alone pays the full per-call overhead (encode, feature channels, one-row
GEMMs); the :class:`repro.serve.MicroBatcher` amortises all of it across a
full-width batch.  This lane measures both shapes on the synthetic
Weibo21-sized workload and records samples/sec to ``BENCH_engine.json``.

Acceptance gate for the serving PR: micro-batched throughput must be at
least 3x the naive one-at-a-time path.

The unmarked smoke tests at the bottom run in the *default* tier-1
collection (like ``test_perf_smoke.py``): a tiny pipeline, three texts,
asserts only — catching functional regressions of the serve path on every
test run without paying for a benchmark pass.

Run the measured lane with ``pytest benchmarks/perf --run-perf -q -s``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _bench_utils import record_bench
from _perf_workload import MAX_LENGTH, PLM_DIM, _corpus

from repro.encoders import FrozenPretrainedEncoder
from repro.models import ModelConfig, build_model
from repro.serve import Pipeline
from repro.tensor import default_dtype

REQUESTS = 256
MICRO_BATCH = 64
ROUNDS = 5


def _build_predictor(dtype: str = "float32"):
    """A textcnn_s serving pipeline over the shared perf corpus."""
    dataset, vocab = _corpus()
    with default_dtype(dtype):
        encoder = FrozenPretrainedEncoder(len(vocab), output_dim=PLM_DIM, seed=3)
        config = ModelConfig(plm_dim=PLM_DIM, num_domains=dataset.num_domains, seed=0)
        model = build_model("textcnn_s", config)
    pipeline = Pipeline.from_training(model, vocab, encoder, max_length=MAX_LENGTH,
                                      domain_names=dataset.domain_names)
    texts = [item.text for item in dataset.items[:REQUESTS]]
    domains = [item.domain for item in dataset.items[:REQUESTS]]
    return pipeline.predictor(), texts, domains


def _run_per_text(predictor, texts, domains) -> None:
    for text, domain in zip(texts, domains):
        predictor.predict_proba([text], domains=[domain])


def _run_microbatched(predictor, texts, domains) -> None:
    with predictor.microbatch(max_batch=MICRO_BATCH, max_latency_ms=1e9) as queue:
        for text, domain in zip(texts, domains):
            queue.submit(text, domain)


@pytest.mark.perf
def test_inference_microbatch_throughput():
    predictor, texts, domains = _build_predictor()
    _run_per_text(predictor, texts[:16], domains[:16])      # warm-up
    _run_microbatched(predictor, texts[:64], domains[:64])
    best_naive = best_micro = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        _run_per_text(predictor, texts, domains)
        best_naive = min(best_naive, time.perf_counter() - start)
        start = time.perf_counter()
        _run_microbatched(predictor, texts, domains)
        best_micro = min(best_micro, time.perf_counter() - start)

    naive_sps = REQUESTS / best_naive
    micro_sps = REQUESTS / best_micro
    speedup = micro_sps / naive_sps
    entries = [
        {"name": "inference/per_text",
         "samples_per_s": round(naive_sps, 1),
         "description": "one predict_proba call per raw text (fused float32)"},
        {"name": "inference/microbatch",
         "samples_per_s": round(micro_sps, 1),
         "baseline": "per-text predict_proba calls",
         "fast": f"MicroBatcher(max_batch={MICRO_BATCH})",
         "speedup": round(speedup, 2)},
    ]
    path = record_bench("engine", entries)
    print(f"inference/per_text   {naive_sps:9.1f} samples/s")
    print(f"inference/microbatch {micro_sps:9.1f} samples/s   {speedup:5.2f}x -> {path}")

    # Acceptance criterion for this PR: micro-batched serving must be at
    # least 3x the naive one-at-a-time path.
    assert speedup >= 3.0, f"micro-batching speedup {speedup:.2f}x below the 3x target"


@pytest.mark.perf
def test_inference_streaming_corpus_scoring():
    """predict_iter corpus lane: streamed batched scoring of the full corpus."""
    predictor, texts, domains = _build_predictor()
    list(predictor.predict_iter(texts[:64], domains=domains[:64], batch_size=64))
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        total = sum(1 for _ in predictor.predict_iter(texts, domains=domains,
                                                      batch_size=MICRO_BATCH))
        best = min(best, time.perf_counter() - start)
    assert total == REQUESTS
    sps = REQUESTS / best
    path = record_bench("engine", [{
        "name": "inference/predict_iter",
        "samples_per_s": round(sps, 1),
        "description": f"streaming corpus scoring, batch_size={MICRO_BATCH}",
    }])
    print(f"inference/predict_iter {sps:9.1f} samples/s -> {path}")


# --------------------------------------------------------------------------- #
# Tier-1 smoke (no perf marker: runs in the default collection)                #
# --------------------------------------------------------------------------- #
def test_inference_smoke_save_load_predict(tmp_path):
    """Tiny pipeline, three texts: export → load → identical probabilities."""
    texts = ["dom1_topic3 fake_sig_1 emo_arousal_x style_sensational_y",
             "dom0_topic1 common_a common_b calm report",
             "dom2_topic9 style_formal_z common_c"]
    vocab_tokens = " ".join(texts).split()
    from repro.data import Vocabulary

    vocab = Vocabulary(vocab_tokens)
    with default_dtype("float32"):
        encoder = FrozenPretrainedEncoder(len(vocab), output_dim=8, seed=1)
        config = ModelConfig(plm_dim=8, num_domains=3, cnn_channels=4,
                             kernel_sizes=(1, 2), rnn_hidden=4, hidden_dim=8,
                             mlp_hidden=(8,), num_experts=2, expert_hidden=4,
                             domain_embedding_dim=4, seed=0)
        model = build_model("textcnn_s", config)
    pipeline = Pipeline.from_training(model, vocab, encoder, max_length=8,
                                      domain_names=["a", "b", "c"])
    expected = pipeline.predictor().predict_proba(texts, domains=[0, 1, 2])
    assert expected.shape == (3, 2)
    assert expected.dtype == np.float32
    np.testing.assert_allclose(expected.sum(axis=1), 1.0, atol=1e-6)

    from repro.serve import load_pipeline

    loaded = load_pipeline(pipeline.save(tmp_path / "smoke"))
    observed = loaded.predictor().predict_proba(texts, domains=[0, 1, 2])
    np.testing.assert_array_equal(observed, expected)


def test_inference_smoke_microbatch_amortises(tmp_path):
    """The queue must group submits into full batches and resolve every ticket."""
    predictor, texts, domains = _build_predictor()
    queue = predictor.microbatch(max_batch=8, max_latency_ms=1e9)
    tickets = [queue.submit(text, domain)
               for text, domain in zip(texts[:20], domains[:20])]
    queue.drain()
    assert all(ticket.done for ticket in tickets)
    assert queue.batches_flushed == 3  # 8 + 8 + 4
    assert queue.flush_reasons == {"full": 2, "latency": 0, "drain": 1}
    for ticket in tickets:
        assert ticket.result.label in (0, 1)
        assert 0.0 <= ticket.result.probability_fake <= 1.0
