"""Streaming subsystem: tier-1 smoke + measured drift-scenario lane.

The unmarked smoke runs in the default tier-1 collection: a tiny schedule
drives the full loop — score, drift detection (thresholds forced low so the
monitor must fire), incremental adaptation with atomic re-export and hot
reload, continual onboarding of an unseen domain — and asserts the
subsystem's invariants without timing anything.

The ``perf``-marked lane (``pytest benchmarks/perf --run-perf -q -s``)
measures sustained scoring throughput over the stream path, the latency of
one adaptation cycle (feedback fold + fine-tune epoch + re-export + reload)
and of one domain onboarding (expand + re-export + reload), and records them
into ``BENCH_streaming.json`` via :func:`record_bench`.
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

from _bench_utils import record_bench

from repro.data import DataLoader, make_weibo21_like
from repro.encoders import FrozenPretrainedEncoder, stock_channels
from repro.experiments.stream_schedule import (
    StreamScheduleConfig,
    generate_stream_schedule,
)
from repro.models import ModelConfig, build_model
from repro.serve import Pipeline
from repro.streaming import (
    AdapterConfig,
    DriftConfig,
    DriftMonitor,
    OnlineAdapter,
    StreamConfig,
    StreamRunner,
)
from repro.tensor import default_dtype

PLM_DIM = 16
MAX_LENGTH = 16
SCALE = 0.03
BUFFER_ROWS = 32

_SCHEDULE = None


def _schedule():
    """One small three-phase schedule (seed -> drift -> novel), built once."""
    global _SCHEDULE
    if _SCHEDULE is None:
        _SCHEDULE = generate_stream_schedule(StreamScheduleConfig(
            scale=SCALE, seed=2024, seed_events=48, drift_events=48,
            novel_events=12, novel_labeled=6))
    return _SCHEDULE


def _build_stack(dtype: str, export_path: str):
    """Pipeline + ring loader + adapter + monitor + runner, all tiny."""
    dataset = make_weibo21_like(scale=SCALE, seed=7)
    vocab = dataset.build_vocabulary()
    with default_dtype(dtype):
        encoder = FrozenPretrainedEncoder(len(vocab), output_dim=PLM_DIM, seed=3)
        config = ModelConfig(plm_dim=PLM_DIM, num_domains=dataset.num_domains,
                             cnn_channels=8, kernel_sizes=(1, 2, 3),
                             hidden_dim=16, mlp_hidden=(16,), seed=5)
        model = build_model("textcnn_s", config)
        pipeline = Pipeline.from_training(model, vocab, encoder,
                                          max_length=MAX_LENGTH,
                                          domain_names=dataset.domain_names)
        ring = dataset.__class__(dataset.items[:BUFFER_ROWS],
                                 domain_names=dataset.domain_names,
                                 name="stream-ring")
        loader = DataLoader(ring, vocab, max_length=MAX_LENGTH, batch_size=16,
                            shuffle=True, seed=0,
                            channels=stock_channels(encoder))
    adapter = OnlineAdapter(pipeline, loader, AdapterConfig(
        export_path=export_path, min_feedback=4))
    # Tiny windows + a zero PSI threshold: the monitor must fire on this
    # schedule, so the smoke exercises the adapt/reload path every run.
    monitor = DriftMonitor(pipeline.domain_names, DriftConfig(
        window=16, min_window=8, reference_size=8, min_labeled=8,
        cooldown=24, psi_threshold=0.0, bias_threshold=0.4))
    predictor = pipeline.predictor()
    runner = StreamRunner(predictor, monitor, adapter,
                          StreamConfig(max_batch=8, warmup_min_labeled=3))
    return runner


def test_streaming_smoke_full_loop():
    """Score -> drift -> adapt -> reload -> onboard, all invariants held."""
    events, _ = _schedule()
    with tempfile.TemporaryDirectory() as scratch:
        runner = _build_stack("float64", os.path.join(scratch, "artifact"))
        report = runner.run(events)

    assert report.events == len(events)
    assert report.failed == 0
    assert report.served == len(events)
    assert report.skipped_unknown_domain == 0
    # The forced-low PSI threshold guarantees drift; drift plus labeled
    # feedback guarantees at least one adaptation and hot reload.
    assert report.drift_events, "monitor never fired despite psi_threshold=0"
    assert report.adaptations
    assert runner.predictor.reloads >= len(report.adaptations)
    # The unseen phase-C domain was onboarded and served.
    assert len(report.onboardings) == 1
    assert report.onboardings[0]["domain"] == "crypto"
    assert runner.predictor.pipeline.model_config.num_domains == 10
    assert report.served_by_domain.get("crypto", 0) > 0
    # The served weights are exactly the adapter's last export.
    assert report.final_fingerprint == runner.adapter.pipeline.fingerprint()
    assert runner.predictor.last_reload_fingerprint == report.final_fingerprint


@pytest.mark.perf
def test_perf_streaming_drift_scenario():
    """Measured lane: throughput + adaptation/onboarding latency."""
    events, _ = _schedule()
    entries = []
    with tempfile.TemporaryDirectory() as scratch:
        # Pure scoring throughput (monitoring on, no adapter) per dtype.
        for dtype in ("float64", "float32"):
            runner = _build_stack(dtype, os.path.join(scratch, f"a-{dtype}"))
            score_runner = StreamRunner(
                runner.predictor, DriftMonitor(
                    runner.predictor.pipeline.domain_names,
                    DriftConfig(window=16, min_window=8, reference_size=8)),
                adapter=None, config=StreamConfig(max_batch=8))
            servable = [event for event in events if event.domain != "crypto"]
            start = time.perf_counter()
            report = score_runner.run(servable)
            elapsed = time.perf_counter() - start
            assert report.failed == 0
            entries.append({
                "name": f"stream_score_throughput_{dtype}",
                "events": report.events,
                "events_per_s": round(report.events / elapsed, 1),
                "drift_events": len(report.drift_events),
            })

        # Full drift scenario: adaptation + onboarding latencies included.
        runner = _build_stack("float32", os.path.join(scratch, "adapted"))
        start = time.perf_counter()
        report = runner.run(events)
        elapsed = time.perf_counter() - start
        assert report.adaptations and report.onboardings
        adapt_start = time.perf_counter()
        for item in list(runner.adapter.loader.dataset.items[:8]):
            runner.adapter.ingest(item)
        runner.adapter.adapt("perf_lane", ordinal=len(events))
        runner.predictor.reload(runner.adapter.config.export_path)
        adapt_s = time.perf_counter() - adapt_start
        entries.append({
            "name": "stream_drift_scenario_float32",
            "events": report.events,
            "events_per_s": round(report.events / elapsed, 1),
            "drift_events": len(report.drift_events),
            "adaptations": len(report.adaptations),
            "onboardings": len(report.onboardings),
            "adaptation_cycle_s": round(adapt_s, 4),
        })

    path = record_bench("streaming", entries)
    print(f"\nrecorded {len(entries)} entries -> {path}")
