"""Full train-step benchmark: fused float32 fast path vs seed float64 path.

This is the headline engine benchmark: one optimisation step (forward,
backward, gradient clip, Adam update) on the synthetic Weibo21-shaped
workload, comparing the seed configuration (composed primitive kernels,
float64) against the fast path (fused kernels, float32).  The models cover
the DTDBD cast: the TextCNN-S student, the BiGRU-S ablation student, the
StyleLSTM baseline, the MDFEND clean teacher and the MoSE LSTM-expert
mixture — three of the five are recurrent, which is where the PR 2
whole-sequence scan kernels (one graph node per direction instead of one per
time step) move the needle.

``test_train_step_dtdbd_distillation_fast_path`` measures the paper's actual
hot loop — a full student-distillation step (CE + ADD + DKD) — comparing the
uncached composed float64 baseline against the cached fused float32 path
(frozen-teacher output cache + single-node ADD kernel).

Baseline and fast configurations are timed in alternating rounds
(best-of-``ROUNDS``) so slow-noisy-neighbour drift on shared machines hits
both sides equally.  The measured speedups are recorded in
``BENCH_engine.json`` and quoted in ``PERFORMANCE.md``.

Run with ``pytest benchmarks/perf --run-perf -q -s``.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import record_bench
from _perf_workload import (
    build_dtdbd_workload,
    build_workload,
    run_dtdbd_steps,
    run_train_steps,
)

pytestmark = pytest.mark.perf

MODELS = ("textcnn_s", "bigru", "stylelstm", "mdfend", "mose")
STEPS = 15
ROUNDS = 6


def _best_alternating(model_name: str) -> tuple[float, float]:
    """Best seconds-per-run for (baseline, fast), interleaved round-robin."""
    model64, loader64 = build_workload("float64", model_name)
    model32, loader32 = build_workload("float32", model_name)
    run_train_steps(model64, loader64, "float64", False, steps=2)  # warm-up
    run_train_steps(model32, loader32, "float32", True, steps=2)
    best64 = best32 = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run_train_steps(model64, loader64, "float64", False, steps=STEPS)
        best64 = min(best64, time.perf_counter() - start)
        start = time.perf_counter()
        run_train_steps(model32, loader32, "float32", True, steps=STEPS)
        best32 = min(best32, time.perf_counter() - start)
    return best64, best32


def test_train_step_fused_float32_vs_seed_float64():
    entries = []
    speedups = []
    for name in MODELS:
        baseline_s, fast_s = _best_alternating(name)
        speedup = baseline_s / fast_s
        speedups.append(speedup)
        entries.append({
            "name": f"train_step/{name}",
            "baseline_ms_per_step": round(baseline_s / STEPS * 1e3, 3),
            "fast_ms_per_step": round(fast_s / STEPS * 1e3, 3),
            "baseline": "composed kernels, float64",
            "fast": "fused kernels, float32",
            "speedup": round(speedup, 2),
        })
        print(f"train_step/{name:10s} baseline {baseline_s / STEPS * 1e3:8.2f} ms/step   "
              f"fast {fast_s / STEPS * 1e3:8.2f} ms/step   {speedup:5.2f}x")

    geomean = 1.0
    for value in speedups:
        geomean *= value
    geomean **= 1.0 / len(speedups)
    entries.append({
        "name": "train_step/geomean",
        "speedup": round(geomean, 2),
        "models": list(MODELS),
    })
    path = record_bench("engine", entries)
    print(f"train_step geomean speedup {geomean:.2f}x -> {path}")

    # Acceptance criterion for this PR: the fused float32 fast path must be at
    # least 2x the seed float64 composed path on the train-step benchmark.
    assert geomean >= 2.0, f"train-step speedup {geomean:.2f}x below the 2x target"


def test_train_step_dtdbd_distillation_fast_path():
    """Full student-distillation step (CE + ADD + DKD): the paper's hot loop.

    Baseline is the seed shape of Algorithm 1's inner loop — composed kernels,
    float64, both frozen teachers re-forwarded on every batch.  The fast path
    stacks the three PR optimisations: the :class:`TeacherCache` replaces both
    per-batch teacher forwards with row gathers, the single-node
    ``fused.add_loss`` collapses the O(B^2)-intermediate ADD chain, and the
    student runs on the fused float32 path.  Cache materialisation happens in
    warm-up (one full-dataset pass, amortised over all epochs in real runs).
    """
    baseline_trainer, baseline_loader = build_dtdbd_workload("float64", cached=False)
    fast_trainer, fast_loader = build_dtdbd_workload("float32", cached=True)
    run_dtdbd_steps(baseline_trainer, baseline_loader, "float64", False, steps=2)
    run_dtdbd_steps(fast_trainer, fast_loader, "float32", True, steps=2)
    best_baseline = best_fast = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run_dtdbd_steps(baseline_trainer, baseline_loader, "float64", False, steps=STEPS)
        best_baseline = min(best_baseline, time.perf_counter() - start)
        start = time.perf_counter()
        run_dtdbd_steps(fast_trainer, fast_loader, "float32", True, steps=STEPS)
        best_fast = min(best_fast, time.perf_counter() - start)

    speedup = best_baseline / best_fast
    entry = {
        "name": "train_step/dtdbd",
        "baseline_ms_per_step": round(best_baseline / STEPS * 1e3, 3),
        "fast_ms_per_step": round(best_fast / STEPS * 1e3, 3),
        "baseline": "uncached teachers, composed kernels, float64",
        "fast": "cached teachers, fused kernels, float32",
        "speedup": round(speedup, 2),
    }
    path = record_bench("engine", [entry])
    print(f"train_step/dtdbd      baseline {best_baseline / STEPS * 1e3:8.2f} ms/step   "
          f"fast {best_fast / STEPS * 1e3:8.2f} ms/step   {speedup:5.2f}x -> {path}")

    # Acceptance criterion for this PR: cached + fused distillation must be at
    # least 3x over the uncached composed baseline.
    assert speedup >= 3.0, f"dtdbd train-step speedup {speedup:.2f}x below the 3x target"
