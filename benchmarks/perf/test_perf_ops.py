"""Per-op forward/backward microbenchmarks: fused kernels vs composed chains.

Each benchmark times one forward+backward of a single operation on a
Weibo21-training-shaped workload, once on the fused fast path and once on the
composed-primitive path, and records the pair (plus the speedup) into
``BENCH_engine.json`` so future PRs have a perf trajectory.

Run with ``pytest benchmarks/perf --run-perf -q -s``.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_utils import record_bench, time_call

from repro.core import adversarial_debiasing_distillation_loss
from repro.nn import (
    GRU,
    LSTM,
    AttentionPooling,
    Conv1d,
    GRUCell,
    LayerNorm,
    LSTMCell,
    Linear,
)
from repro.tensor import Tensor, functional as F, fused_kernels

pytestmark = pytest.mark.perf

RNG = np.random.default_rng(7)

BATCH, SEQ, DIM, HIDDEN, CLASSES = 64, 24, 128, 128, 2

# Sub-100µs ops sit at the wall-clock timer's noise floor, where scheduler
# jitter alone swings the fused/composed ratio by ±15% between runs even with
# best-of-N timing.  Those ops get a noise-aware floor instead of the strict
# >= 1.0 gate; a real regression (fused slower than composed by more than
# timer noise) still fails.
SPEEDUP_FLOORS = {"op/softmax": 0.85, "op/log_softmax": 0.85}


def _assert_no_regression(entries: list[dict]) -> None:
    regressed = [entry for entry in entries
                 if entry["speedup"] < SPEEDUP_FLOORS.get(entry["name"], 1.0)]
    assert not regressed, f"fused kernels regressed below composed speed: {regressed}"


def _bench_pair(name: str, run, entries: list[dict], repeats: int = 5) -> float:
    """Time ``run`` with fusion on and off; append a record; return speedup."""
    with fused_kernels(True):
        fused_s = time_call(run, repeats=repeats)
    with fused_kernels(False):
        composed_s = time_call(run, repeats=repeats)
    speedup = composed_s / fused_s if fused_s > 0 else float("inf")
    entries.append({
        "name": f"op/{name}",
        "fused_ms": round(fused_s * 1e3, 4),
        "composed_ms": round(composed_s * 1e3, 4),
        "speedup": round(speedup, 2),
    })
    print(f"{name:24s} fused {fused_s * 1e3:8.3f} ms   "
          f"composed {composed_s * 1e3:8.3f} ms   {speedup:5.2f}x")
    return speedup


def test_per_op_fused_vs_composed():
    entries: list[dict] = []

    x2 = RNG.standard_normal((BATCH, DIM))
    x3 = RNG.standard_normal((BATCH, SEQ, DIM))
    logits = RNG.standard_normal((BATCH * 8, CLASSES))
    teacher = RNG.standard_normal((BATCH * 8, CLASSES))
    targets = RNG.integers(0, CLASSES, BATCH * 8)

    linear = Linear(DIM, HIDDEN, rng=np.random.default_rng(0))

    def run_linear():
        out = linear(Tensor(x3, requires_grad=True))
        (out * out).mean().backward()
    _bench_pair("linear", run_linear, entries)

    def run_softmax():
        out = F.softmax(Tensor(x2, requires_grad=True), axis=-1)
        (out * out).sum().backward()
    _bench_pair("softmax", run_softmax, entries, repeats=15)

    def run_log_softmax():
        out = F.log_softmax(Tensor(x2, requires_grad=True), axis=-1)
        out.sum().backward()
    _bench_pair("log_softmax", run_log_softmax, entries, repeats=15)

    def run_cross_entropy():
        F.cross_entropy(Tensor(logits, requires_grad=True), targets).backward()
    _bench_pair("cross_entropy", run_cross_entropy, entries)

    def run_distillation_kl():
        F.distillation_kl(Tensor(logits, requires_grad=True), Tensor(teacher),
                          temperature=4.0).backward()
    _bench_pair("distillation_kl", run_distillation_kl, entries)

    student_features = RNG.standard_normal((BATCH, HIDDEN))
    teacher_features = RNG.standard_normal((BATCH, HIDDEN))

    def run_add_loss():
        # Eq. 5-6 on a training-shaped mini-batch: the composed chain builds
        # ~25 nodes of (batch, batch) intermediates, the fused kernel one.
        adversarial_debiasing_distillation_loss(
            Tensor(student_features, requires_grad=True),
            Tensor(teacher_features), temperature=1.0).backward()
    _bench_pair("add_loss", run_add_loss, entries)

    gru = GRUCell(DIM, HIDDEN, rng=np.random.default_rng(1))
    hidden = RNG.standard_normal((BATCH, HIDDEN))

    def run_gru_step():
        gru.zero_grad()
        out = gru(Tensor(x2, requires_grad=True), Tensor(hidden, requires_grad=True))
        (out * out).mean().backward()
    _bench_pair("gru_step", run_gru_step, entries)

    lstm = LSTMCell(DIM, HIDDEN, rng=np.random.default_rng(2))
    cell = RNG.standard_normal((BATCH, HIDDEN))

    def run_lstm_step():
        lstm.zero_grad()
        new_h, _ = lstm(Tensor(x2, requires_grad=True),
                        Tensor(hidden, requires_grad=True),
                        Tensor(cell, requires_grad=True))
        (new_h * new_h).mean().backward()
    _bench_pair("lstm_step", run_lstm_step, entries)

    conv = Conv1d(DIM, 64, 5, rng=np.random.default_rng(3))

    def run_conv1d():
        conv.zero_grad()
        out = conv(Tensor(x3, requires_grad=True))
        (out * out).mean().backward()
    _bench_pair("conv1d", run_conv1d, entries)

    path = record_bench("engine", entries)
    print(f"recorded {len(entries)} entries -> {path}")

    # Fusion must never be slower than the composed chain it replaces
    # (modulo the timer-noise floors for the sub-100µs ops).
    _assert_no_regression(entries)


def test_scan_and_fused_layer_ops():
    """Whole-sequence scan kernels and the attention/layer-norm fused ops.

    The fused side runs one ``gru_scan``/``lstm_scan`` node per direction; the
    composed side is the per-step cell loop (itself using the fused step
    kernels when fusion is on, so the composed timing here is taken with
    fusion fully off — the same baseline the step benchmarks use).  Smoke
    target: ``pytest benchmarks/perf/test_perf_ops.py --run-perf -k scan``.
    """
    entries: list[dict] = []

    x_seq = RNG.standard_normal((BATCH, SEQ, DIM))
    lengths = RNG.integers(SEQ // 2, SEQ + 1, BATCH)
    mask = (np.arange(SEQ)[None, :] < lengths[:, None]).astype(float)

    gru = GRU(DIM, HIDDEN, bidirectional=True, rng=np.random.default_rng(4))

    def run_gru_scan():
        gru.zero_grad()
        states, final = gru(Tensor(x_seq, requires_grad=True), mask=mask)
        ((states * states).mean() + (final * final).mean()).backward()
    _bench_pair("gru_scan", run_gru_scan, entries)

    lstm = LSTM(DIM, HIDDEN, bidirectional=True, rng=np.random.default_rng(5))

    def run_lstm_scan():
        lstm.zero_grad()
        states, final = lstm(Tensor(x_seq, requires_grad=True), mask=mask)
        ((states * states).mean() + (final * final).mean()).backward()
    _bench_pair("lstm_scan", run_lstm_scan, entries)

    pool = AttentionPooling(DIM, hidden_dim=32, rng=np.random.default_rng(6))

    def run_attention_pooling():
        pool.zero_grad()
        out = pool(Tensor(x_seq, requires_grad=True), mask=mask)
        (out * out).mean().backward()
    _bench_pair("attention_pooling", run_attention_pooling, entries)

    norm = LayerNorm(DIM)

    def run_layer_norm():
        norm.zero_grad()
        out = norm(Tensor(x_seq, requires_grad=True))
        (out * out).mean().backward()
    _bench_pair("layer_norm", run_layer_norm, entries)

    path = record_bench("engine", entries)
    print(f"recorded {len(entries)} entries -> {path}")

    _assert_no_regression(entries)
