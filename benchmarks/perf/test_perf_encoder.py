"""Encoder-backend benchmarks: the cached backend must actually pay rent.

Serving traffic repeats windows (health probes, hot stories, retried rows),
and ``CachedBackend`` turns each repeat into a dict lookup instead of the
frozen encoder's per-row GEMMs.  The ``perf``-marked benchmark calibrates
the repeat-traffic speedup and records it into ``BENCH_engine.json``; the
unmarked smoke runs in every tier-1 collection pinning the two properties
the speedup is allowed to rely on — hits are bit-identical to local answers
and the decorator adds no error to misses.

Run the calibrated version with ``pytest benchmarks/perf --run-perf -k
encoder``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _bench_utils import record_bench

from repro.encoders import CachedBackend, FrozenPretrainedEncoder, LocalBackend


def _windows(vocab_size: int, rows: int, seq: int, count: int):
    rng = np.random.default_rng(17)
    windows = []
    for _ in range(count):
        token_ids = rng.integers(1, vocab_size, size=(rows, seq))
        token_ids[:, seq - 3:] = 0
        mask = (token_ids != 0).astype(np.float64)
        windows.append((token_ids, mask))
    return windows


def _repeat_pass_seconds(backend, windows, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        for token_ids, mask in windows:
            backend.encode(token_ids, mask)
    return time.perf_counter() - start


def test_cached_backend_parity_smoke():
    """Tier-1 guard: cache hits are bit-identical and actually served."""
    encoder = FrozenPretrainedEncoder(vocab_size=80, output_dim=8, seed=2)
    cached = CachedBackend(LocalBackend(encoder))
    for token_ids, mask in _windows(80, rows=4, seq=8, count=3):
        expected = encoder.encode(token_ids, mask)
        np.testing.assert_array_equal(cached.encode(token_ids, mask), expected)
        np.testing.assert_array_equal(cached.encode(token_ids, mask), expected)
    stats = cached.stats()
    assert stats["hits"] == 3 and stats["misses"] == 3
    assert stats["hit_rate"] == pytest.approx(0.5)


@pytest.mark.perf
def test_cached_backend_repeat_traffic_speedup_calibrated():
    """Repeat traffic through the cache must beat re-encoding handily."""
    encoder = FrozenPretrainedEncoder(vocab_size=2000, output_dim=64, seed=2)
    windows = _windows(2000, rows=32, seq=24, count=8)
    repeats = 12

    local = LocalBackend(encoder)
    _repeat_pass_seconds(local, windows, 1)  # warm-up
    local_s = min(_repeat_pass_seconds(local, windows, repeats)
                  for _ in range(3))

    cached = CachedBackend(LocalBackend(encoder))
    _repeat_pass_seconds(cached, windows, 1)  # populate
    cached_s = min(_repeat_pass_seconds(cached, windows, repeats)
                   for _ in range(3))
    assert cached.stats()["hit_rate"] > 0.9

    speedup = local_s / cached_s
    per_window_us = cached_s / (repeats * len(windows)) * 1e6
    record_bench("engine", [{
        "name": "encoder/cached_backend_repeat_speedup",
        "speedup_vs_local": round(speedup, 1),
        "local_s": round(local_s, 4),
        "cached_s": round(cached_s, 4),
        "hit_us_per_window": round(per_window_us, 2),
    }])
    print(f"cached backend repeat traffic: {speedup:.1f}x vs local "
          f"({per_window_us:.1f} µs/window hit)")
    # A hit is a BLAKE2b of the window bytes + a dict lookup; the local path
    # is per-row GEMMs. Anything under 5x means the cache path regressed.
    assert speedup > 5.0, f"cached speedup only {speedup:.1f}x"
