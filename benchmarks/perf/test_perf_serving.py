"""Fault-tolerant serving tier under open-loop load, with a chaos lane.

The load generator is **open-loop**: requests arrive on a fixed schedule
(`rate` per second) whether or not earlier ones finished, which is how real
traffic behaves and the only shape that exposes queueing collapse — a
closed-loop driver would politely slow down with the server.  Each staged
ramp submits at a higher arrival rate and records the latency distribution
(p50/p95/p99), sustained throughput, and the shed/expired/redispatch
counters from the server's ledger into ``BENCH_serving.json``.

The chaos lane SIGKILLs a worker mid-ramp and holds the pool to its
contract: every ticket resolves (zero lost), the p99 spike stays bounded by
the respawn budget, and every returned probability is bit-identical to a
single-process :class:`repro.serve.Predictor` replaying the same batch
compositions.

The scaling lane compares the multi-process pool against the in-process
``MicroBatcher``.  Its >=2x gate is asserted only when the machine has at
least 3 cores (two workers plus the dispatcher need real parallelism);
on smaller boxes the honest numbers are recorded without the gate.

Run the measured lanes with ``pytest benchmarks/perf --run-perf -q -s``.
"""

from __future__ import annotations

import os
import signal
import tempfile
import time

import numpy as np
import pytest

from _bench_utils import record_bench
from _perf_workload import MAX_LENGTH, PLM_DIM, _corpus

from repro.encoders import FrozenPretrainedEncoder
from repro.models import ModelConfig, build_model
from repro.reliability import FaultPlan
from repro.serve import (
    Pipeline,
    Server,
    ServerConfig,
    ServerOverloaded,
    load_pipeline,
)
from repro.tensor import default_dtype

STAGES = (60.0, 120.0, 240.0)   # arrival rates, requests/second
STAGE_REQUESTS = 72             # submissions per stage
_ARTIFACT = None


def _artifact() -> str:
    """The perf-corpus pipeline saved once to a scratch directory."""
    global _ARTIFACT
    if _ARTIFACT is None:
        dataset, vocab = _corpus()
        with default_dtype("float32"):
            encoder = FrozenPretrainedEncoder(len(vocab), output_dim=PLM_DIM, seed=3)
            config = ModelConfig(plm_dim=PLM_DIM, num_domains=dataset.num_domains,
                                 seed=0)
            model = build_model("textcnn_s", config)
        pipeline = Pipeline.from_training(model, vocab, encoder,
                                          max_length=MAX_LENGTH,
                                          domain_names=dataset.domain_names)
        _ARTIFACT = os.path.join(tempfile.mkdtemp(prefix="repro-bench-"),
                                 "detector")
        pipeline.save(_ARTIFACT)
    return _ARTIFACT


def _requests(count: int):
    dataset, _ = _corpus()
    items = dataset.items
    texts = [items[i % len(items)].text for i in range(count)]
    domains = [items[i % len(items)].domain for i in range(count)]
    return texts, domains


def _percentiles(latencies_ms):
    ordered = np.sort(np.asarray(latencies_ms, dtype=np.float64))
    return {f"p{q}": round(float(np.percentile(ordered, q)), 2)
            for q in (50, 95, 99)}


def _run_stage(server, rate_hz: float, count: int, *, kill_at: int | None = None):
    """Submit ``count`` requests open-loop at ``rate_hz``; drain; measure.

    ``kill_at`` SIGKILLs the pool's first worker right after that submission
    index — the chaos lane's mid-ramp fault.
    """
    texts, domains = _requests(count)
    interval = 1.0 / rate_hz
    tickets, shed = [], 0
    start = time.perf_counter()
    for index in range(count):
        target = start + index * interval
        now = time.perf_counter()
        if target > now:
            time.sleep(target - now)
        try:
            tickets.append(server.submit_ticket(texts[index],
                                                domain=domains[index]))
        except ServerOverloaded:
            shed += 1
        if kill_at is not None and index == kill_at:
            os.kill(server.worker_pids()[0], signal.SIGKILL)
    assert server.drain(120.0), "queue failed to drain after the ramp"
    elapsed = time.perf_counter() - start
    results = [ticket.result(timeout=10.0) for ticket in tickets]
    served = [r for r in results if r.ok]
    return {
        "rate_hz": rate_hz,
        "offered": count,
        "served": len(served),
        "shed": shed,
        "errors": len(results) - len(served),
        "throughput_rps": round(len(served) / elapsed, 1),
        "latency_ms": _percentiles([r.latency_ms for r in served]),
    }, tickets


@pytest.mark.perf
def test_serving_staged_ramps():
    """Three arrival-rate ramps against a healthy 2-worker pool."""
    config = ServerConfig(workers=2, max_batch=16, max_latency_ms=5.0,
                          queue_high_water=1024)
    stages = []
    with Server(_artifact(), config) as server:
        assert server.wait_ready(120.0)
        _run_stage(server, 50.0, 16)                     # warm-up
        for rate in STAGES:
            stage, _ = _run_stage(server, rate, STAGE_REQUESTS)
            stages.append(stage)
        ledger = server.stats.snapshot()

    entries = [{
        "name": f"serving/ramp_{int(stage['rate_hz'])}rps",
        "throughput_rps": stage["throughput_rps"],
        "latency_ms": stage["latency_ms"],
        "offered": stage["offered"],
        "served": stage["served"],
        "shed": stage["shed"],
        "description": f"open-loop arrival at {stage['rate_hz']:.0f} req/s, "
                       "2 workers",
    } for stage in stages]
    entries.append({
        "name": "serving/ledger",
        "description": "server counters accumulated over the ramp lane",
        **{key: ledger[key] for key in ("submitted", "served", "shed",
                                        "expired", "worker_deaths",
                                        "worker_restarts", "redispatched")},
    })
    path = record_bench("serving", entries)
    for stage in stages:
        lat = stage["latency_ms"]
        print(f"serving/ramp {stage['rate_hz']:6.0f} rps offered -> "
              f"{stage['throughput_rps']:7.1f} rps served   "
              f"p50={lat['p50']:.1f} p95={lat['p95']:.1f} p99={lat['p99']:.1f} ms")
    print(f"-> {path}")
    assert all(stage["served"] == stage["offered"] for stage in stages)


@pytest.mark.perf
def test_serving_chaos_worker_kill_mid_ramp():
    """SIGKILL one of two workers mid-ramp: zero lost, bounded p99, parity."""
    config = ServerConfig(workers=2, max_batch=16, max_latency_ms=5.0,
                          queue_high_water=1024, record_batches=True)
    with Server(_artifact(), config) as server:
        assert server.wait_ready(120.0)
        healthy, _ = _run_stage(server, 120.0, STAGE_REQUESTS)
        chaos, tickets = _run_stage(server, 120.0, STAGE_REQUESTS,
                                    kill_at=STAGE_REQUESTS // 3)
        ledger = server.stats.snapshot()

        # Zero lost tickets: every chaos-lane submission came back served.
        assert chaos["served"] == chaos["offered"], chaos
        assert ledger["worker_deaths"] >= 1
        assert ledger["worker_restarts"] >= 1

        # Bounded p99 spike: the detour through death-detection + respawn +
        # re-dispatch may cost up to the supervision budget, never more.
        spike_ms = chaos["latency_ms"]["p99"] - healthy["latency_ms"]["p99"]
        assert spike_ms < 10_000.0, f"p99 spike {spike_ms:.0f}ms unbounded"

        # Bit parity: replay the exact batch compositions the workers scored.
        reference = load_pipeline(_artifact()).predictor()
        by_ticket = {ticket.id: ticket for ticket in tickets}
        checked = 0
        for record in server.batch_records:
            expected = reference.predict(record["texts"],
                                         domains=record["domains"])
            for ticket_id, prediction in zip(record["tickets"], expected):
                ticket = by_ticket.get(ticket_id)
                if ticket is None:      # a batch from the healthy stage
                    continue
                assert ticket.prediction.probabilities == prediction.probabilities
                checked += 1
        assert checked == len(tickets)

    record_bench("serving", [{
        "name": "serving/chaos_worker_kill",
        "healthy_p99_ms": healthy["latency_ms"]["p99"],
        "chaos_p99_ms": chaos["latency_ms"]["p99"],
        "p99_spike_ms": round(spike_ms, 2),
        "worker_deaths": ledger["worker_deaths"],
        "redispatched": ledger["redispatched"],
        "lost_tickets": chaos["offered"] - chaos["served"],
        "bit_parity_checked": checked,
        "description": "SIGKILL one of 2 workers mid-ramp at 120 req/s",
    }])
    print(f"serving/chaos p99 {healthy['latency_ms']['p99']:.1f} -> "
          f"{chaos['latency_ms']['p99']:.1f} ms, "
          f"{ledger['redispatched']} batches re-dispatched, 0 lost")


@pytest.mark.perf
def test_serving_multiworker_scaling():
    """2-worker pool vs the in-process MicroBatcher on the same requests.

    The >=2x gate needs the two workers to actually run in parallel, so it
    is asserted only on machines with >=3 cores; elsewhere the measured
    ratio is recorded as-is (IPC overhead makes it <1x on a single core).
    """
    count = 192
    texts, domains = _requests(count)

    predictor = load_pipeline(_artifact()).predictor()
    with predictor.microbatch(max_batch=16, max_latency_ms=1e9) as queue:
        for text, domain in zip(texts[:32], domains[:32]):
            queue.submit(text, domain)          # warm-up
    start = time.perf_counter()
    with predictor.microbatch(max_batch=16, max_latency_ms=1e9) as queue:
        for text, domain in zip(texts, domains):
            queue.submit(text, domain)
    single_rps = count / (time.perf_counter() - start)

    config = ServerConfig(workers=2, max_batch=16, max_latency_ms=5.0,
                          queue_high_water=4096)
    with Server(_artifact(), config) as server:
        assert server.wait_ready(120.0)
        warm = [server.submit_ticket(t, domain=d)
                for t, d in zip(texts[:32], domains[:32])]
        assert server.drain(60.0) and all(t.result(10.0).ok for t in warm)
        start = time.perf_counter()
        tickets = [server.submit_ticket(t, domain=d)
                   for t, d in zip(texts, domains)]
        assert server.drain(120.0)
        pool_rps = count / (time.perf_counter() - start)
        assert all(ticket.result(10.0).ok for ticket in tickets)

    cores = os.cpu_count() or 1
    ratio = pool_rps / single_rps
    gate_enforced = cores >= 3
    record_bench("serving", [{
        "name": "serving/multiworker_scaling",
        "single_process_rps": round(single_rps, 1),
        "pool_2workers_rps": round(pool_rps, 1),
        "ratio": round(ratio, 2),
        "cpu_cores": cores,
        "gate_enforced": gate_enforced,
        "description": "2-worker pool vs in-process MicroBatcher; the 2x "
                       "gate applies on >=3 cores",
    }])
    print(f"serving/scaling single {single_rps:7.1f} rps, pool {pool_rps:7.1f} "
          f"rps ({ratio:.2f}x, {cores} cores, gate "
          f"{'on' if gate_enforced else 'off'})")
    if gate_enforced:
        assert ratio >= 2.0, (
            f"2-worker pool {ratio:.2f}x vs single-process; expected >=2x "
            f"on a {cores}-core machine")


# --------------------------------------------------------------------------- #
# Tier-1 smoke (no perf marker: runs in the default collection)                #
# --------------------------------------------------------------------------- #
def test_serving_smoke_pool_survives_kill_with_parity():
    """Asserts only: 2 workers, one injected kill, bit parity vs Predictor."""
    texts, domains = _requests(24)
    plan = FaultPlan(seed=1).fail("serve.worker.step", error=SystemExit,
                                  after=0, times=1)
    config = ServerConfig(workers=2, max_batch=8, max_latency_ms=2.0,
                          record_batches=True, fault_plans={0: plan})
    with Server(_artifact(), config) as server:
        assert server.wait_ready(120.0)
        tickets = [server.submit_ticket(t, domain=d)
                   for t, d in zip(texts, domains)]
        assert server.drain(60.0)
        assert all(ticket.result(10.0).ok for ticket in tickets)
        snap = server.stats.snapshot()
        assert snap["served"] == len(texts)
        assert snap["worker_deaths"] >= 1 and snap["worker_restarts"] >= 1
        reference = load_pipeline(_artifact()).predictor()
        by_ticket = {ticket.id: ticket for ticket in tickets}
        checked = 0
        for record in server.batch_records:
            expected = reference.predict(record["texts"],
                                         domains=record["domains"])
            for ticket_id, prediction in zip(record["tickets"], expected):
                ticket = by_ticket[ticket_id]
                assert ticket.prediction.probabilities == prediction.probabilities
                checked += 1
        assert checked == len(tickets)
