"""Fast scan- and distillation-kernel smoke checks, wired into the tier-1 flow.

Unlike the ``perf``-marked suites in this directory, these tests are *not*
gated behind ``--run-perf``: they run in the default tier-1 collection (and
match ``pytest benchmarks/perf --run-perf -k "scan or distill"``), so a
kernel regression — functional or a gross slowdown — is caught on every test
run without paying for a full benchmark pass.  Shapes are kept tiny and the
assertions coarse (fused must simply not lose to the composed chains it
replaces); the calibrated numbers live in ``BENCH_engine.json`` via the
``--run-perf`` suites.
"""

from __future__ import annotations

import numpy as np

from _bench_utils import time_call

from repro.core import adversarial_debiasing_distillation_loss
from repro.nn import GRU, LSTM, Embedding, lstm_expert_scan
from repro.tensor import (
    Tensor,
    functional as F,
    fused,
    fused_kernels,
    graph_nodes_created,
    no_grad,
)

RNG = np.random.default_rng(11)

BATCH, SEQ, DIM, HIDDEN = 16, 12, 32, 32


def _mask() -> np.ndarray:
    lengths = RNG.integers(SEQ // 2, SEQ + 1, BATCH)
    return (np.arange(SEQ)[None, :] < lengths[:, None]).astype(float)


def _train_pass(encoder, x, mask):
    encoder.zero_grad()
    states, final = encoder(Tensor(x, requires_grad=True), mask=mask)
    ((states * states).mean() + (final * final).mean()).backward()


def test_scan_smoke_fused_not_slower_than_composed():
    """One fused scan node must clearly beat the O(T)-node per-step loop.

    The scan runs 2.2–3.6x faster than the composed loop even at these tiny
    shapes, so the 1.5x allowance below leaves >2x headroom for noisy-CI
    scheduling pauses while still failing if the fused path ever collapses to
    per-step speed.
    """
    x = RNG.standard_normal((BATCH, SEQ, DIM))
    mask = _mask()
    for encoder in (GRU(DIM, HIDDEN, bidirectional=True, rng=np.random.default_rng(0)),
                    LSTM(DIM, HIDDEN, bidirectional=True, rng=np.random.default_rng(1))):
        with fused_kernels(True):
            fused_s = time_call(lambda: _train_pass(encoder, x, mask), repeats=5)
        with fused_kernels(False):
            composed_s = time_call(lambda: _train_pass(encoder, x, mask), repeats=5)
        assert fused_s < composed_s * 1.5, (
            f"{type(encoder).__name__} scan regressed: fused {fused_s * 1e3:.2f} ms "
            f"vs composed {composed_s * 1e3:.2f} ms")


def test_scan_smoke_single_node_guarantees():
    """Every scan entry point must stay a single lane_scan graph node."""
    x = Tensor(RNG.standard_normal((4, 6, 5)), requires_grad=True)
    mask = _mask()[:4, :6]
    gru = GRU(5, 3, bidirectional=True, rng=np.random.default_rng(2))
    lstm = LSTM(5, 3, bidirectional=False, rng=np.random.default_rng(3))
    experts = [LSTM(5, 3, rng=np.random.default_rng(4 + i)) for i in range(3)]

    before = graph_nodes_created()
    fused.gru_bidir_scan(x, *_gru_args(gru), mask=mask)
    assert graph_nodes_created() - before == 1
    before = graph_nodes_created()
    cell = lstm.forward_cell
    zeros = Tensor(np.zeros((4, 3)))
    fused.lstm_scan(x, zeros, zeros, cell.weight_ih, cell.weight_hh, cell.bias,
                    mask=mask)
    assert graph_nodes_created() - before == 1
    before = graph_nodes_created()
    lstm_expert_scan(experts, x, mask=mask)
    assert graph_nodes_created() - before == 1


def _gru_args(gru: GRU):
    zeros = Tensor(np.zeros((4, 3)))
    fwd, bwd = gru.forward_cell, gru.backward_cell
    return (zeros, zeros, fwd.weight_ih, fwd.weight_hh, fwd.bias,
            bwd.weight_ih, bwd.weight_hh, bwd.bias)


def test_distill_smoke_add_loss_single_node_and_parity():
    """The fused ADD kernel must stay one node and match the composed chain.

    Exercises ``fused.add_loss`` in every tier-1 run: the composed ADD builds
    ~25 nodes of (batch, batch) intermediates per call, the fused path exactly
    one, with loss and student gradient agreeing to 1e-6.
    """
    student_data = RNG.standard_normal((8, 16))
    teacher = Tensor(RNG.standard_normal((8, 16)))
    results = {}
    for fused_on in (True, False):
        with fused_kernels(fused_on):
            student = Tensor(student_data.copy(), requires_grad=True)
            before = graph_nodes_created()
            loss = adversarial_debiasing_distillation_loss(student, teacher,
                                                           temperature=2.0)
            nodes = graph_nodes_created() - before
            loss.backward()
            results[fused_on] = (loss.item(), student.grad, nodes)
    assert results[True][2] == 1
    assert results[False][2] > 10
    assert abs(results[True][0] - results[False][0]) < 1e-6
    np.testing.assert_allclose(results[True][1], results[False][1], atol=1e-6)


def test_distill_smoke_embedding_single_node_and_parity():
    """The fused embedding lookup must stay one node and match the composed path.

    Duplicate indices check the ``np.add.at`` scatter accumulation; the
    composed ground truth is the generic advanced-indexing node.
    """
    table = Embedding(11, 6, rng=np.random.default_rng(5))
    indices = RNG.integers(0, 11, (4, 7))
    indices[0, 0] = indices[1, 1] = indices[2, 2] = 3
    results = {}
    for fused_on in (True, False):
        with fused_kernels(fused_on):
            table.zero_grad()
            before = graph_nodes_created()
            out = table(indices)
            nodes = graph_nodes_created() - before
            (out * out).sum().backward()
            results[fused_on] = (out.numpy().copy(), table.weight.grad.copy(), nodes)
    assert results[True][2] == results[False][2] == 1
    np.testing.assert_array_equal(results[True][0], results[False][0])
    np.testing.assert_allclose(results[True][1], results[False][1], atol=1e-10)
    with fused_kernels(True), no_grad():
        before = graph_nodes_created()
        F.embedding(table.weight, indices)
        assert graph_nodes_created() == before


def test_scan_smoke_expert_lanes_match_sequential():
    """Quick parity: lane-batched experts equal per-expert sequential scans."""
    x = RNG.standard_normal((3, 5, 4))
    mask = np.ones((3, 5))
    mask[1, 3:] = 0.0
    experts = [LSTM(4, 3, rng=np.random.default_rng(20 + i)) for i in range(3)]
    with fused_kernels(True):
        lanes = lstm_expert_scan(experts, Tensor(x), mask=mask).numpy()
        for n, expert in enumerate(experts):
            states, _ = expert(Tensor(x), mask=mask)
            np.testing.assert_allclose(lanes[:, :, n * 3:(n + 1) * 3],
                                       states.numpy(), atol=1e-10)
