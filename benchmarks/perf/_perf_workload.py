"""Shared synthetic Weibo21-shaped workload for the perf benchmarks.

The corpus/vocabulary are built once (plain NumPy, dtype-independent); loaders
and models are rebuilt per configuration inside the requested dtype policy so
parameters, feature channels and per-batch tensors all live in that dtype.
"""

from __future__ import annotations

import numpy as np

from repro.core.dtdbd import DTDBDConfig, DTDBDTrainer
from repro.core.trainer import Trainer, TrainerConfig, evaluate_model
from repro.data import DataLoader, make_weibo21_like
from repro.encoders import (
    FrozenPretrainedEncoder,
    emotion_feature_extractor,
    style_feature_extractor,
)
from repro.models import ModelConfig, build_model
from repro.tensor import default_dtype, fused_kernels

PLM_DIM = 32
MAX_LENGTH = 24
BATCH_SIZE = 32
SCALE = 0.08

_DATASET = None
_VOCAB = None


def _corpus():
    global _DATASET, _VOCAB
    if _DATASET is None:
        _DATASET = make_weibo21_like(scale=SCALE, seed=2024)
        _VOCAB = _DATASET.build_vocabulary()
    return _DATASET, _VOCAB


def build_workload(dtype: str, model_name: str):
    """Return ``(model, loader)`` built entirely under the ``dtype`` policy."""
    dataset, vocab = _corpus()
    with default_dtype(dtype):
        encoder = FrozenPretrainedEncoder(len(vocab), output_dim=PLM_DIM, seed=3)
        loader = DataLoader(
            dataset, vocab, max_length=MAX_LENGTH, batch_size=BATCH_SIZE,
            shuffle=True, seed=0,
            feature_extractors={
                "plm": encoder.as_feature_extractor(),
                "style": style_feature_extractor,
                "emotion": emotion_feature_extractor,
            })
        config = ModelConfig(plm_dim=PLM_DIM, num_domains=dataset.num_domains, seed=0)
        model = build_model(model_name, config)
    return model, loader


def run_train_steps(model, loader, dtype: str, fused_on: bool, steps: int) -> int:
    """Run ``steps`` optimisation steps (forward+backward+clip+update)."""
    trainer = Trainer(model, TrainerConfig(epochs=1, learning_rate=1e-3))
    done = 0
    with default_dtype(dtype), fused_kernels(fused_on):
        model.train()
        while done < steps:
            for batch in loader:
                trainer.optimizer.zero_grad()
                loss, _ = model.compute_loss(batch)
                loss.backward()
                trainer.clipper.clip(trainer.optimizer.parameters)
                trainer.optimizer.step()
                done += 1
                if done >= steps:
                    break
    return done


def run_eval_pass(model, loader, dtype: str, fused_on: bool):
    """One full no-grad evaluation pass over the loader."""
    with default_dtype(dtype), fused_kernels(fused_on):
        return evaluate_model(model, loader)


# --------------------------------------------------------------------------- #
# DTDBD distillation step (Algorithm 1, student stage)                         #
# --------------------------------------------------------------------------- #
def build_dtdbd_workload(dtype: str, cached: bool):
    """Return ``(trainer, loader)`` for the student-distillation benchmark.

    The cast is the paper's: a TextCNN-S student, a TextCNN-S unbiased teacher
    and an MDFEND clean teacher (both teachers frozen — untrained weights, the
    step cost does not depend on convergence).  The trainer persists across
    timing rounds so the one-off teacher-cache materialisation happens during
    warm-up, not inside the timed region — exactly how a real multi-epoch run
    amortises it.
    """
    dataset, vocab = _corpus()
    with default_dtype(dtype):
        encoder = FrozenPretrainedEncoder(len(vocab), output_dim=PLM_DIM, seed=3)
        loader = DataLoader(
            dataset, vocab, max_length=MAX_LENGTH, batch_size=BATCH_SIZE,
            shuffle=True, seed=0,
            feature_extractors={
                "plm": encoder.as_feature_extractor(),
                "style": style_feature_extractor,
                "emotion": emotion_feature_extractor,
            })
        config = ModelConfig(plm_dim=PLM_DIM, num_domains=dataset.num_domains, seed=0)
        student = build_model("textcnn_s", config)
        unbiased = build_model("textcnn_s", config.with_overrides(seed=1))
        clean = build_model("mdfend", config.with_overrides(seed=2))
        trainer = DTDBDTrainer(
            student, unbiased, clean,
            DTDBDConfig(epochs=1, learning_rate=1e-3,
                        cache_teacher_outputs=cached))
    return trainer, loader


def run_dtdbd_steps(trainer, loader, dtype: str, fused_on: bool, steps: int) -> int:
    """Run ``steps`` full distillation steps (CE + ADD + DKD, Eq. 13)."""
    done = 0
    with default_dtype(dtype), fused_kernels(fused_on):
        trainer.student.train()
        unbiased_cache, clean_cache = trainer._caches_for(loader)
        while done < steps:
            for batch in loader:
                trainer.optimizer.zero_grad()
                loss, _, _ = trainer._batch_loss(batch, unbiased_cache, clean_cache)
                loss.backward()
                trainer.clipper.clip(trainer.optimizer.parameters)
                trainer.optimizer.step()
                done += 1
                if done >= steps:
                    break
    return done
