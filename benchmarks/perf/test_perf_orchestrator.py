"""Parallel sweep orchestration: wall-clock vs the serial ground truth.

The measured lane runs the same grid of real training cells (fresh bundle +
``train_baseline`` per cell) through the serial in-process path and through
the 2-worker supervised pool, records both wall-clocks and the speedup into
``BENCH_engine.json``, and asserts byte-identical results.  As with the
serving scaling lane, the speedup gate is enforced only on machines with at
least 3 cores (two workers plus the supervisor need real parallelism); on
smaller boxes the honest numbers are recorded with the gate off.

The unmarked smoke at the bottom runs in the default (tier-1) collection: a
tiny journaled sweep through the real worker pool, resumed to prove completed
cells are skipped, with the regenerated Table V byte-compared against the
committed ``benchmarks/results`` file.

Run the measured lane with ``pytest benchmarks/perf --run-perf -q -s``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from _bench_utils import record_bench

from repro.experiments.orchestrator import (
    CellSpec,
    OrchestratorConfig,
    run_sweep,
    table_cell_specs,
)
from repro.tensor import get_default_dtype, set_default_dtype
from repro.utils import get_rng_state, set_rng_state

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                           "results")


@pytest.fixture(autouse=True)
def _isolate_global_state():
    """Serial cells install dtype/seed globals in-process; restore them."""
    rng_state = get_rng_state()
    dtype = get_default_dtype()
    yield
    set_default_dtype(dtype)
    set_rng_state(rng_state)


def _grid_specs():
    overrides = {"scale": 0.08, "epochs": 2, "max_length": 16,
                 "dtype": "float64"}
    return [CellSpec(cell_id=f"baseline-{name}-{offset}", kind="baseline",
                     params={"name": name, "dataset": "chinese",
                             "seed_offset": offset, "config": overrides})
            for name in ("textcnn", "bigru") for offset in (0, 1)]


@pytest.mark.perf
def test_sweep_parallel_vs_serial_wallclock(tmp_path):
    specs = _grid_specs()

    start = time.perf_counter()
    serial = run_sweep(specs, config=OrchestratorConfig(jobs=0))
    serial_s = time.perf_counter() - start
    assert serial.ok

    start = time.perf_counter()
    parallel = run_sweep(specs, config=OrchestratorConfig(jobs=2))
    parallel_s = time.perf_counter() - start
    assert parallel.ok
    assert (json.dumps(parallel.results, sort_keys=True)
            == json.dumps(serial.results, sort_keys=True))

    cores = os.cpu_count() or 1
    speedup = serial_s / parallel_s
    gate_enforced = cores >= 3
    record_bench("engine", [{
        "name": "orchestrator/sweep_speedup_2workers",
        "cells": len(specs),
        "serial_s": round(serial_s, 3),
        "parallel_2workers_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "cpu_cores": cores,
        "gate_enforced": gate_enforced,
        "description": "4-cell training grid, 2-worker pool vs serial "
                       "in-process; the >=1.5x gate applies on >=3 cores "
                       "(spawn + IPC overhead dominates on small boxes)",
    }])
    print(f"orchestrator/sweep serial {serial_s:6.2f}s, 2-worker pool "
          f"{parallel_s:6.2f}s ({speedup:.2f}x, {cores} cores, gate "
          f"{'on' if gate_enforced else 'off'})")
    if gate_enforced:
        assert speedup >= 1.5, (
            f"2-worker sweep {speedup:.2f}x vs serial; expected >=1.5x on a "
            f"{cores}-core machine")


# --------------------------------------------------------------------------- #
# Tier-1 smoke (no perf marker: runs in the default collection)                #
# --------------------------------------------------------------------------- #
def test_sweep_smoke_journaled_resume_matches_committed_table(tmp_path):
    """Tiny journaled pool sweep; resume skips all; Table V bytes match."""
    specs = table_cell_specs(["table2", "table5"], config={"dtype": "float64"})
    journal_dir = tmp_path / "journal"
    result = run_sweep(specs, config=OrchestratorConfig(jobs=1),
                       journal_dir=journal_dir)
    assert result.ok
    committed = os.path.join(RESULTS_DIR, "table5_english_stats.txt")
    with open(committed, "r", encoding="utf-8") as handle:
        assert result.results["table5"]["text"] + "\n" == handle.read()

    resumed = run_sweep(specs, config=OrchestratorConfig(jobs=1),
                        journal_dir=journal_dir, resume=True)
    assert all(outcome.status == "cached" for outcome in resumed.outcomes)
    assert (json.dumps(resumed.results, sort_keys=True)
            == json.dumps(result.results, sort_keys=True))
