"""Reliability-layer overhead benchmarks: fault hooks must be free when off.

``repro.reliability.fault_point`` sits on hot paths (encoder encode, trainer
step, serve flush, artifact reads).  With no plan installed it must compile
down to one global load plus an ``is None`` check, so the chaos harness costs
nothing in production.  The ``perf``-marked benchmark calibrates the per-call
cost and records it into ``BENCH_engine.json``; the unmarked smoke runs in
every tier-1 collection with a coarse bound so a regression (e.g. someone
adding allocation or locking to the disabled path) is caught immediately.

Run the calibrated version with ``pytest benchmarks/perf --run-perf -k
reliability``.
"""

from __future__ import annotations

import time

import pytest

from _bench_utils import record_bench

from repro.reliability import FaultPlan, InjectedFault, fault_point, inject


def _ns_per_call(calls: int) -> float:
    """Average wall-clock nanoseconds per disabled ``fault_point`` call."""
    start = time.perf_counter()
    for _ in range(calls):
        fault_point("bench.site")
    return (time.perf_counter() - start) / calls * 1e9


@pytest.mark.perf
def test_fault_point_disabled_overhead_calibrated():
    """~200k disabled calls must average well under 2µs each."""
    _ns_per_call(10_000)  # warm-up
    best = min(_ns_per_call(200_000) for _ in range(3))
    record_bench("engine", [{
        "name": "reliability/fault_point_disabled_ns",
        "ns_per_call": round(best, 1),
    }])
    print(f"fault_point (disabled): {best:.0f} ns/call")
    assert best < 2_000, f"disabled fault_point costs {best:.0f} ns/call"


def test_fault_point_disabled_overhead_smoke():
    """Tier-1 guard: the disabled hook stays in the sub-microsecond regime.

    The bound is deliberately loose (10µs vs the ~100ns reality) so scheduler
    noise on a loaded CI box never flakes it, while an accidental allocation,
    lock or logging call on the disabled path — each of which costs well over
    10µs amortised — still fails.
    """
    _ns_per_call(1_000)  # warm-up
    best = min(_ns_per_call(20_000) for _ in range(3))
    assert best < 10_000, f"disabled fault_point costs {best:.0f} ns/call"


def test_fault_point_detail_arguments_not_evaluated_lazily():
    """Keyword details are evaluated by the caller; document the contract.

    Hot-path call sites must therefore pass cheap references (the existing
    list of texts, ints) rather than building tuples or arrays per call.  This
    smoke pins the behaviour the benchmark above depends on: with no plan
    installed the call returns immediately and fires nothing, and with a plan
    installed the same site raises.
    """
    fault_point("bench.contract", payload="cheap reference")
    plan = FaultPlan().fail("bench.contract")
    with inject(plan):
        with pytest.raises(InjectedFault):
            fault_point("bench.contract", payload="cheap reference")
    assert plan.fired == 1
    fault_point("bench.contract")  # plan uninstalled again
