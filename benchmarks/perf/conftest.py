"""Perf-suite conftest: make ``benchmarks/_bench_utils`` importable.

pytest inserts each test file's own directory into ``sys.path`` (rootdir
layout without ``__init__.py`` files), so the helpers one level up need an
explicit path entry here.
"""

from __future__ import annotations

import os
import sys

_BENCHMARKS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _BENCHMARKS_DIR not in sys.path:
    sys.path.insert(0, _BENCHMARKS_DIR)
