"""Full evaluation-pass benchmark per model (inference fast path).

Evaluation runs under ``no_grad()``: with the fast-path engine no backward
closures or graph nodes are constructed at all, and the fused kernels collapse
each layer into one NumPy expression.  This benchmark measures a full
evaluation pass (all batches, prediction + metrics) per model, seed float64
composed path vs fused float32 path, and records it in ``BENCH_engine.json``.

Run with ``pytest benchmarks/perf --run-perf -q -s``.
"""

from __future__ import annotations

import pytest

from _bench_utils import record_bench, time_call
from _perf_workload import build_workload, run_eval_pass

pytestmark = pytest.mark.perf

MODELS = ("textcnn_s", "bigru", "stylelstm", "mdfend")


def test_eval_pass_fused_float32_vs_seed_float64():
    entries = []
    for name in MODELS:
        model64, loader64 = build_workload("float64", name)
        model32, loader32 = build_workload("float32", name)
        model64.eval()
        model32.eval()
        baseline_s = time_call(
            lambda: run_eval_pass(model64, loader64, "float64", fused_on=False),
            repeats=3)
        fast_s = time_call(
            lambda: run_eval_pass(model32, loader32, "float32", fused_on=True),
            repeats=3)
        speedup = baseline_s / fast_s
        entries.append({
            "name": f"eval_pass/{name}",
            "baseline_ms": round(baseline_s * 1e3, 2),
            "fast_ms": round(fast_s * 1e3, 2),
            "baseline": "composed kernels, float64",
            "fast": "fused kernels, float32",
            "speedup": round(speedup, 2),
        })
        print(f"eval_pass/{name:10s} baseline {baseline_s * 1e3:8.2f} ms   "
              f"fast {fast_s * 1e3:8.2f} ms   {speedup:5.2f}x")

    path = record_bench("engine", entries)
    print(f"recorded {len(entries)} eval entries -> {path}")

    slowest = min(entry["speedup"] for entry in entries)
    assert slowest >= 1.0, f"inference fast path regressed: {entries}"
