"""Table VI — performance and bias comparison on the Chinese (Weibo21-like) corpus.

Regenerates the full table: per-domain F1, overall F1, FNED, FPED and Total for
every baseline plus Our(MD) and Our(M3).  The shape claims checked here are the
paper's headline results: DTDBD achieves the best (lowest) Total bias while its
F1 stays competitive with the strongest baselines.
"""

import numpy as np
from _bench_utils import emit, run_once

from repro.experiments import TABLE6_BASELINES, format_comparison_table, run_comparison


def test_table6_chinese_comparison(benchmark, chinese_config, chinese_bundle):
    reports = run_once(benchmark, lambda: run_comparison(
        chinese_config, baselines=TABLE6_BASELINES, bundle=chinese_bundle))
    text = format_comparison_table(reports, chinese_bundle.dataset.domain_names,
                                   title="Table VI — Chinese dataset comparison")
    emit("table6_chinese_comparison", text)

    assert set(TABLE6_BASELINES).issubset(reports)
    assert {"our_md", "our_m3"}.issubset(reports)

    baseline_totals = [reports[name].total for name in TABLE6_BASELINES]
    baseline_f1 = [reports[name].overall_f1 for name in TABLE6_BASELINES]
    best_ours_total = min(reports["our_md"].total, reports["our_m3"].total)
    best_ours_f1 = max(reports["our_md"].overall_f1, reports["our_m3"].overall_f1)

    # Bias: DTDBD must land on the low-bias side of the baseline distribution
    # (the paper reports it as the best overall; at benchmark scale individual
    # baselines are noisy, so we check against the median).
    assert best_ours_total <= np.median(baseline_totals)
    # Performance: competitive with the strong baselines (within a small
    # margin of the best baseline F1, as in the paper).
    assert best_ours_f1 >= max(baseline_f1) - 0.05
    # And strictly better on bias than the student-architecture baseline.
    assert best_ours_total < reports["textcnn"].total
