"""Table I — Weibo21 per-domain %Fake / %News statistics."""

from _bench_utils import emit, run_once

from repro.data import dataset_statistics_table, imbalance_summary, make_weibo21_like
from repro.experiments import format_dataset_statistics


def test_table1_weibo21_statistics(benchmark):
    def regenerate():
        dataset = make_weibo21_like(scale=1.0, seed=2024)
        return dataset, dataset_statistics_table(dataset)

    dataset, table = run_once(benchmark, regenerate)
    summary = imbalance_summary(dataset)
    text = format_dataset_statistics(table, title="Table I — Weibo21-like statistics (full scale)")
    text += ("\nImbalance: %News spread "
             f"{summary['news_share_spread']:.1f} points, %Fake spread "
             f"{summary['fake_ratio_spread']:.1f} points")
    emit("table1_dataset_stats", text)

    by_name = {row["domain"]: row for row in table["domains"]}
    # The paper's Table I numbers must be reproduced exactly at full scale.
    assert table["total"] == 9128
    assert abs(by_name["science"]["pct_news"] - 2.6) < 0.1
    assert abs(by_name["society"]["pct_news"] - 29.2) < 0.2
    assert abs(by_name["disaster"]["pct_fake"] - 76.1) < 0.2
    assert abs(by_name["finance"]["pct_fake"] - 27.4) < 0.2
