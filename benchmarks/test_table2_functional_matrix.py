"""Table II — functional comparison of fake-news detection methods (static)."""

from _bench_utils import emit, run_once

from repro.experiments import FUNCTIONAL_COMPARISON, format_functional_comparison


def test_table2_functional_comparison(benchmark):
    text = run_once(benchmark, format_functional_comparison)
    emit("table2_functional_matrix", text)

    ours = FUNCTIONAL_COMPARISON["DTDBD (ours)"]
    assert ours["multi_domain"] and ours["debiasing"]
    assert ours["bias_type"] == "Domain"
    # Only the de-biasing rows declare a bias type, as in the paper.
    for method, caps in FUNCTIONAL_COMPARISON.items():
        if not caps["debiasing"]:
            assert caps["bias_type"] is None, method
