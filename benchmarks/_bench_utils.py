"""Helpers shared by the benchmark modules (kept outside conftest so imports
are unambiguous with the repository-root conftest.py)."""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under ``benchmarks/results``."""
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
