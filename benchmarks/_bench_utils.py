"""Helpers shared by the benchmark modules (kept outside conftest so imports
are unambiguous with the repository-root conftest.py)."""

from __future__ import annotations

import contextlib
import json
import os
import platform
import time

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback, best-effort only
    fcntl = None

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under ``benchmarks/results``."""
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


# --------------------------------------------------------------------------- #
# Perf-trajectory records (BENCH_<suite>.json at the repository root)          #
# --------------------------------------------------------------------------- #
def bench_json_path(suite: str) -> str:
    """Path of the machine-readable record for ``suite`` (e.g. ``engine``)."""
    return os.path.join(REPO_ROOT, f"BENCH_{suite}.json")


@contextlib.contextmanager
def _bench_lock(path: str):
    """Exclusive advisory lock serialising read-merge-write on one record.

    Two parallel sweep cells (or a perf lane racing the orchestrator) updating
    the same ``BENCH_<suite>.json`` must not lose each other's keys: without
    the lock both read the same baseline, merge disjoint entries and the
    second ``os.replace`` silently drops the first writer's rows.  Uses a
    sidecar ``.lock`` file so the lock survives the atomic replace of the
    record itself (locking the record fd would pin the *old* inode).
    """
    if fcntl is None:  # non-POSIX: degrade to the old unlocked behaviour
        yield
        return
    lock_path = f"{path}.lock"
    with open(lock_path, "a+", encoding="utf-8") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def record_bench(suite: str, entries: list[dict], merge: bool = True) -> str:
    """Merge benchmark ``entries`` into ``BENCH_<suite>.json`` and return the path.

    Each entry is a flat dict with at least a ``name`` key; entries replace any
    existing entry of the same name so repeated runs keep one row per
    benchmark.  The file keeps enough environment metadata to make numbers
    comparable across PRs on the same machine.  Safe under concurrent writers:
    the whole read-merge-write cycle holds an exclusive advisory lock, so
    parallel processes interleave instead of losing keys.
    """
    path = bench_json_path(suite)
    with _bench_lock(path):
        return _record_bench_locked(suite, path, entries, merge)


def _record_bench_locked(suite: str, path: str, entries: list[dict],
                         merge: bool) -> str:
    environment = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "recorded_unix": int(time.time()),
    }
    payload = {"suite": suite, "entries": []}
    if merge and os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            payload = {"suite": suite, "entries": []}
        previous_env = payload.get("environment", {})
        if any(previous_env.get(key) != environment[key]
               for key in ("python", "machine")):
            # Numbers from a different interpreter/machine are not comparable;
            # start a fresh record instead of mixing provenance.
            payload = {"suite": suite, "entries": []}
    existing = {entry.get("name"): entry for entry in payload.get("entries", [])}
    for entry in entries:
        existing[entry["name"]] = entry
    payload["suite"] = suite
    payload["entries"] = [existing[name] for name in sorted(existing, key=str)]
    payload["environment"] = environment
    # Atomic replace so an interrupted run never leaves a half-written record
    # (kept dependency-free: the benchmark helpers must import without repro).
    temp_path = f"{path}.tmp.{os.getpid()}"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, path)
    return path


def time_call(fn, repeats: int = 5, warmup: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
