"""Shared fixtures for the table/figure reproduction benchmarks.

Every benchmark:

* uses the ``benchmark`` fixture with a single round (the measured quantity is
  the wall-clock of regenerating the table, not a micro-benchmark);
* prints the regenerated table in the paper's layout;
* appends the same text to ``benchmarks/results/<experiment>.txt`` so the
  output survives pytest's capture and can be pasted into EXPERIMENTS.md.

Scale and epochs are controlled by the ``REPRO_SCALE`` / ``REPRO_SCALE_EN`` /
``REPRO_EPOCHS`` environment variables (see ``repro.experiments.config``).
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments import (  # noqa: E402
    default_chinese_config,
    default_english_config,
    prepare_data,
)


@pytest.fixture(scope="session")
def chinese_config():
    return default_chinese_config()


@pytest.fixture(scope="session")
def english_config():
    return default_english_config()


# The corpora/vocabularies/feature channels are expensive and immutable, so
# they are built once per session; the only mutable state a bundle carries is
# its loaders' shuffle generators (plus the process-wide fallback seed).  The
# function-scoped fixtures below reseed that state before every benchmark, so
# each table is computed from the same deterministic stream whether the file
# runs standalone or inside a full collection — results no longer depend on
# how many epochs earlier tests consumed (the bug that made
# ``test_table8_ablation.py`` fail in isolation).


@pytest.fixture(scope="session")
def _chinese_bundle_session(chinese_config):
    return prepare_data(chinese_config)


@pytest.fixture(scope="session")
def _english_bundle_session(english_config):
    return prepare_data(english_config)


@pytest.fixture
def chinese_bundle(_chinese_bundle_session):
    _chinese_bundle_session.reseed()
    return _chinese_bundle_session


@pytest.fixture
def english_bundle(_english_bundle_session):
    _english_bundle_session.reseed()
    return _english_bundle_session
