"""Table VII — performance and bias comparison on the English corpus.

Paper shape: on English data DTDBD again achieves the lowest Total bias, while
its F1 is slightly below the strongest multi-domain baselines (MDFEND /
M3FEND) because the three English domains share little content.
"""

import numpy as np
from _bench_utils import emit, run_once

from repro.experiments import TABLE7_BASELINES, format_comparison_table, run_comparison


def test_table7_english_comparison(benchmark, english_config, english_bundle):
    reports = run_once(benchmark, lambda: run_comparison(
        english_config, baselines=TABLE7_BASELINES, bundle=english_bundle))
    text = format_comparison_table(reports, english_bundle.dataset.domain_names,
                                   title="Table VII — English dataset comparison")
    emit("table7_english_comparison", text)

    assert set(TABLE7_BASELINES).issubset(reports)
    baseline_totals = [reports[name].total for name in TABLE7_BASELINES]
    baseline_f1 = [reports[name].overall_f1 for name in TABLE7_BASELINES]
    best_ours_total = min(reports["our_md"].total, reports["our_m3"].total)
    best_ours_f1 = max(reports["our_md"].overall_f1, reports["our_m3"].overall_f1)

    # The paper's English-dataset margins are small (DTDBD 0.26 vs EANN 0.27),
    # so at benchmark scale we check the robust versions of its claims:
    # (1) distilling from the biased clean teacher reduces its bias —
    #     Our(MD) is less biased than MDFEND itself;
    assert reports["our_md"].total < reports["mdfend"].total
    # (2) DTDBD never sits at the biased end of the field;
    assert best_ours_total <= np.percentile(baseline_totals, 80)
    # (3) F1 remains within a reasonable margin of the best baseline (the
    #     paper itself reports a gap to MDFEND / M3FEND on English data).
    assert best_ours_f1 >= max(baseline_f1) - 0.10
